/**
 * @file
 * Crash-resilient process-level execution tier (DESIGN.md §5f).
 *
 * runProcSweep() shards a campaign of independent work units across
 * forked worker subprocesses. Each worker receives unit indices over a
 * pipe (exec/proc/wire.hh frames), evaluates the caller's unit
 * function, and streams the serialized result back. The supervisor
 * side implements the robustness ladder:
 *
 *   - heartbeat watchdog: a working unit must both beat regularly and
 *     finish inside its timeout, or its worker is SIGKILLed;
 *   - bounded retry: a crashed / hung / errored unit is re-dispatched
 *     with exponential backoff, up to maxAttempts;
 *   - poison-unit quarantine: a unit that exhausts its attempts is
 *     reported in the sweep report, never fatal to the campaign;
 *   - graceful drain: SIGINT/SIGTERM stops dispatching, lets in-flight
 *     units finish and journal, then returns with drained set (a
 *     second signal kills the in-flight work immediately);
 *   - results journal: with journalPath set, every completed unit is
 *     appended + fsync'd (exec/proc/journal.hh), so a campaign killed
 *     at any instant — including SIGKILL of the supervisor itself —
 *     resumes from the journal without recomputing finished units.
 *
 * Determinism: results are keyed by unit index, so the report is
 * independent of worker count, scheduling, and crash/retry history —
 * a unit's payload is byte-identical whether computed in-process, by
 * any worker, on any attempt, or replayed from the journal.
 *
 * Precondition: the caller forks from a quiescent process — no
 * ThreadPool jobs in flight (forked children inherit only the calling
 * thread; a lock held by a pool thread would deadlock the child).
 */

#ifndef DORA_EXEC_PROC_SUPERVISOR_HH
#define DORA_EXEC_PROC_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dora
{

/** Tunables of the process-level sweep tier. */
struct ProcSweepConfig
{
    /** Worker subprocesses to fork (>= 1). */
    uint32_t workers = 1;

    /** Attempts per unit before quarantine (>= 1). */
    uint32_t maxAttempts = 3;

    /** Wall-clock budget for one unit attempt (seconds). */
    double unitTimeoutSec = 600.0;

    /** Worker heartbeat period while a unit is running (seconds). */
    double heartbeatIntervalSec = 0.25;

    /** Silence longer than this while busy means a hung worker. */
    double heartbeatTimeoutSec = 15.0;

    /** Backoff before attempt k+1: base * 2^(k-1) seconds. */
    double retryBackoffSec = 0.05;

    /** Append-only results journal path; empty disables journaling. */
    std::string journalPath;

    /**
     * Identity of the campaign (config hash + unit-count digest). A
     * journal written under a different hash is refused on resume.
     */
    uint64_t campaignHash = 0;

    /**
     * Units [0, precompletedPrefix) are already durable in an
     * external artifact (e.g. a campaign aggregate checkpoint): the
     * supervisor marks them complete with an empty payload, never
     * dispatches them, and skips their journal records on resume.
     */
    uint64_t precompletedPrefix = 0;

    /**
     * Streaming completion hook, called once per newly completed or
     * journal-resumed unit (after the unit is journaled, in the
     * supervisor's single control thread). The return value is the
     * caller's durable floor: every unit below it is durable outside
     * the journal, so the supervisor may drop those records
     * (journal high-water-mark truncation). Return 0 to keep all.
     */
    std::function<uint64_t(uint64_t unit, const std::string &payload)>
        onUnitComplete;

    /**
     * Do not retain unit payloads in the report (the streaming hook
     * is the consumer): supervisor memory stays O(open units)
     * instead of O(campaign results).
     */
    bool discardResults = false;
};

/** A unit that exhausted its attempts. */
struct ProcUnitFailure
{
    uint64_t unit = 0;
    uint32_t attempts = 0;
    std::string lastError;
};

/** Outcome of one runProcSweep() campaign. */
struct ProcSweepReport
{
    /** Unit-indexed result payloads (empty for incomplete units). */
    std::vector<std::string> results;

    /** Unit-indexed completion flags. */
    std::vector<uint8_t> completed;

    /** Units that exhausted maxAttempts (reported, not fatal). */
    std::vector<ProcUnitFailure> quarantined;

    uint64_t workerCrashes = 0;  //!< crash/hang/timeout kills observed
    uint64_t retries = 0;        //!< re-dispatches after a failure
    uint64_t unitsResumed = 0;   //!< satisfied from the journal
    uint64_t unitsRun = 0;       //!< executed by workers this call
    uint64_t unitsPrecompleted = 0; //!< satisfied by the caller's prefix

    /** True when SIGINT/SIGTERM interrupted the campaign. */
    bool drained = false;
    int drainSignal = 0;         //!< the signal that triggered drain

    /** Every unit has a result (no quarantine, no drain gap). */
    bool allCompleted() const
    {
        for (const uint8_t c : completed)
            if (!c)
                return false;
        return !completed.empty() || results.empty();
    }
};

/** Evaluates one unit to its serialized result payload. */
using ProcUnitFn = std::function<std::string(uint64_t unit)>;

/**
 * Run @p unit_count units through @p config.workers subprocesses.
 * @p run_unit executes inside the worker (inherited via fork — plain
 * closures work; no task serialization is involved) and must return
 * the unit's serialized, deterministic payload.
 */
ProcSweepReport runProcSweep(const ProcSweepConfig &config,
                             uint64_t unit_count,
                             const ProcUnitFn &run_unit);

} // namespace dora

#endif // DORA_EXEC_PROC_SUPERVISOR_HH
