#include "exec/proc/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/mutex.hh"
#include "exec/proc/journal.hh"
#include "exec/proc/wire.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dora
{

namespace
{

// ---------------------------------------------------------------- //
// Signal-driven drain flag (async-signal-safe: lock-free atomics)  //
// ---------------------------------------------------------------- //

std::atomic<int> g_drainSignal{0};
std::atomic<int> g_drainCount{0};

void
drainHandler(int sig)
{
    g_drainSignal.store(sig, std::memory_order_relaxed);
    g_drainCount.fetch_add(1, std::memory_order_relaxed);
}

/** Wall clock for watchdogs/backoff (host time; never in results). */
double
monotonicSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
writeAll(int fd, const char *p, size_t n)
{
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

// ---------------------------------------------------------------- //
// Worker side                                                      //
// ---------------------------------------------------------------- //

/**
 * Write side of the worker->supervisor pipe. Result frames (main
 * loop) and heartbeat frames (beat thread) interleave on the same fd,
 * so a frame must never be written without holding mutex — sendLocked
 * carries REQUIRES(mutex), making an unguarded write a compile error
 * under -Wthread-safety instead of a rare interleaved-frame
 * corruption at runtime.
 */
struct WorkerPipe
{
    Mutex mutex;
    const int fd;

    explicit WorkerPipe(int write_fd) : fd(write_fd) {}

    bool sendLocked(const std::string &bytes) REQUIRES(mutex)
    {
        return writeAll(fd, bytes.data(), bytes.size());
    }
};

/**
 * Child-process main: read dispatches, evaluate units, stream back
 * results, and keep a heartbeat flowing while a unit is running.
 * Exits via _exit() only — the child must never unwind into the
 * parent's atexit/static-destructor machinery.
 */
[[noreturn]] void
workerMain(int rfd, int wfd, const ProcUnitFn &run_unit,
           const ProcSweepConfig &config)
{
    WorkerPipe pipe(wfd);
    std::atomic<bool> working{false};
    std::atomic<uint64_t> working_unit{0};
    std::atomic<uint32_t> working_attempt{0};
    std::atomic<bool> quit{false};

    std::thread beat([&] {
        const auto interval = std::chrono::duration<double>(
            std::max(0.01, config.heartbeatIntervalSec));
        while (!quit.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(interval);
            if (!working.load(std::memory_order_relaxed))
                continue;
            Frame hb;
            hb.type = FrameType::Heartbeat;
            hb.unit = working_unit.load(std::memory_order_relaxed);
            hb.attempt =
                working_attempt.load(std::memory_order_relaxed);
            const std::string bytes = encodeFrame(hb);
            MutexLock lock(pipe.mutex);
            if (!pipe.sendLocked(bytes))
                return;  // supervisor gone; main loop will see EOF/EPIPE
        }
    });
    beat.detach();  // torn down by _exit

    FrameParser parser;
    char buf[4096];
    bool done = false;
    while (!done) {
        const ssize_t r = ::read(rfd, buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            break;  // supervisor closed the dispatch pipe
        parser.feed(buf, static_cast<size_t>(r));
        Frame frame;
        while (!done && parser.next(&frame)) {
            if (frame.type == FrameType::Shutdown) {
                done = true;
                break;
            }
            if (frame.type != FrameType::Dispatch)
                continue;

            working_unit.store(frame.unit, std::memory_order_relaxed);
            working_attempt.store(frame.attempt,
                                  std::memory_order_relaxed);
            working.store(true, std::memory_order_relaxed);

            Frame reply;
            reply.unit = frame.unit;
            reply.attempt = frame.attempt;
            try {
                reply.payload = run_unit(frame.unit);
                reply.type = FrameType::Result;
            } catch (const std::exception &e) {
                warn("proc worker: unit %llu attempt %u threw: %s",
                     static_cast<unsigned long long>(frame.unit),
                     frame.attempt, e.what());
                reply.type = FrameType::WorkerError;
                reply.payload = e.what();
            } catch (...) {
                warn("proc worker: unit %llu attempt %u threw a "
                     "non-std exception",
                     static_cast<unsigned long long>(frame.unit),
                     frame.attempt);
                reply.type = FrameType::WorkerError;
                reply.payload = "non-std exception";
            }
            working.store(false, std::memory_order_relaxed);

            const std::string bytes = encodeFrame(reply);
            MutexLock lock(pipe.mutex);
            if (!pipe.sendLocked(bytes)) {
                done = true;
                break;
            }
        }
        if (parser.corrupted())
            break;
    }
    quit.store(true, std::memory_order_relaxed);
    ::_exit(0);
}

// ---------------------------------------------------------------- //
// Supervisor side                                                  //
// ---------------------------------------------------------------- //

/** One worker subprocess as the supervisor sees it. */
struct WorkerSlot
{
    pid_t pid = -1;
    int toChild = -1;
    int fromChild = -1;
    FrameParser parser;
    bool busy = false;
    uint64_t unit = 0;
    uint32_t attempt = 0;
    double unitStart = 0.0;
    double lastBeat = 0.0;
};

/** A unit waiting for (re-)dispatch. */
struct PendingUnit
{
    uint64_t unit = 0;
    uint32_t attempt = 1;     //!< attempt number this dispatch will be
    double eligibleAt = 0.0;  //!< backoff gate (monotonic seconds)
};

/** A supervisor incident destined for the run trace. */
struct Incident
{
    uint64_t unit = 0;
    uint32_t attempt = 0;
    const char *kind = "";
    std::string detail;
};

std::string
describeExit(int status)
{
    if (WIFSIGNALED(status))
        return std::string("worker killed by signal ") +
            std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return std::string("worker exited with status ") +
            std::to_string(WEXITSTATUS(status));
    return "worker vanished";
}

class Supervisor
{
  public:
    Supervisor(const ProcSweepConfig &config, uint64_t unit_count,
               const ProcUnitFn &run_unit)
        : config_(config), unitCount_(unit_count), runUnit_(run_unit)
    {
        report_.results.resize(unit_count);
        report_.completed.assign(unit_count, 0);
        lastError_.resize(unit_count);
    }

    ProcSweepReport run();

  private:
    void markPrecompletedPrefix();
    void resumeFromJournal();
    void notifyComplete(uint64_t unit, const std::string &payload);
    void maybeCompact();
    void spawnWorker(WorkerSlot &slot);
    void reapWorkers(double now);
    void drainWorkerPipe(WorkerSlot &slot, double now);
    void handleFrame(WorkerSlot &slot, Frame &frame, double now);
    void completeUnit(uint64_t unit, uint32_t attempt,
                      std::string payload, bool from_journal);
    void failUnit(uint64_t unit, uint32_t attempt,
                  const std::string &error, double now);
    void dispatchEligible(double now);
    void pollWorkers(double now);
    void enforceWatchdogs(double now);
    void shutdownWorkers();
    void emitTrace();

    bool finished() const
    {
        return doneCount_ + quarantinedCount_ >= unitCount_;
    }

    bool anyBusy() const
    {
        for (const auto &slot : slots_)
            if (slot.pid > 0 && slot.busy)
                return true;
        return false;
    }

    const ProcSweepConfig &config_;
    const uint64_t unitCount_;
    const ProcUnitFn &runUnit_;

    ProcSweepReport report_;
    ResultsJournal journal_;
    std::vector<WorkerSlot> slots_;
    std::deque<PendingUnit> pending_;
    std::vector<std::string> lastError_;
    std::vector<Incident> incidents_;
    uint64_t doneCount_ = 0;
    uint64_t quarantinedCount_ = 0;
    uint64_t compactFloor_ = 0;    //!< durable-outside-journal floor
    uint64_t compactedBelow_ = 0;  //!< floor already applied on disk
    bool forcedStop_ = false;
};

void
Supervisor::markPrecompletedPrefix()
{
    const uint64_t prefix =
        std::min(config_.precompletedPrefix, unitCount_);
    for (uint64_t u = 0; u < prefix; ++u) {
        if (report_.completed[u])
            continue;
        report_.completed[u] = 1;
        ++doneCount_;
        ++report_.unitsPrecompleted;
    }
    // Everything below the prefix is durable in the caller's
    // artifact, so those journal records are dead weight.
    compactFloor_ = std::max(compactFloor_, prefix);
    if (report_.unitsPrecompleted > 0)
        inform("proc supervisor: %llu/%llu units already durable in "
               "the caller's checkpoint",
               static_cast<unsigned long long>(
                   report_.unitsPrecompleted),
               static_cast<unsigned long long>(unitCount_));
}

void
Supervisor::notifyComplete(uint64_t unit, const std::string &payload)
{
    if (!config_.onUnitComplete)
        return;
    const uint64_t floor = config_.onUnitComplete(unit, payload);
    compactFloor_ = std::max(compactFloor_, floor);
}

void
Supervisor::maybeCompact()
{
    if (compactFloor_ <= compactedBelow_ || !journal_.isOpen())
        return;
    if (!journal_.compactBelow(compactFloor_))
        warn("proc supervisor: journal compaction failed (%s); resume "
             "will replay extra records",
             journal_.error().c_str());
    else
        compactedBelow_ = compactFloor_;
}

void
Supervisor::resumeFromJournal()
{
    if (config_.journalPath.empty())
        return;
    if (!journal_.open(config_.journalPath, config_.campaignHash,
                       unitCount_))
        fatal("proc supervisor: %s", journal_.error().c_str());
    for (const auto &[unit, payload] : journal_.loaded()) {
        if (unit >= unitCount_ || report_.completed[unit])
            continue;
        report_.completed[unit] = 1;
        ++doneCount_;
        ++report_.unitsResumed;
        notifyComplete(unit, payload);
        if (!config_.discardResults)
            report_.results[unit] = payload;
    }
    maybeCompact();
    if (report_.unitsResumed > 0)
        inform("proc supervisor: resumed %llu/%llu units from %s",
               static_cast<unsigned long long>(report_.unitsResumed),
               static_cast<unsigned long long>(unitCount_),
               config_.journalPath.c_str());
}

void
Supervisor::spawnWorker(WorkerSlot &slot)
{
    int to_child[2], from_child[2];
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0)
        fatal("proc supervisor: pipe: %s", std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("proc supervisor: fork: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: keep only this worker's pipe ends.
        ::close(to_child[1]);
        ::close(from_child[0]);
        for (const auto &other : slots_) {
            if (other.toChild >= 0)
                ::close(other.toChild);
            if (other.fromChild >= 0)
                ::close(other.fromChild);
        }
        workerMain(to_child[0], from_child[1], runUnit_, config_);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    slot.pid = pid;
    slot.toChild = to_child[1];
    slot.fromChild = from_child[0];
    slot.parser = FrameParser();
    slot.busy = false;
    ::fcntl(slot.fromChild, F_SETFL, O_NONBLOCK);
}

void
Supervisor::completeUnit(uint64_t unit, uint32_t attempt,
                         std::string payload, bool from_journal)
{
    if (unit >= unitCount_ || report_.completed[unit])
        return;  // duplicate (late result after a timeout retry)
    report_.completed[unit] = 1;
    ++doneCount_;
    if (!from_journal) {
        ++report_.unitsRun;
        // Journal before notifying: the streaming consumer's durable
        // floor must never run ahead of what the journal holds.
        if (journal_.isOpen() && !journal_.append(unit, payload))
            warn("proc supervisor: journal append failed (%s); "
                 "campaign continues but will not resume past unit "
                 "%llu",
                 journal_.error().c_str(),
                 static_cast<unsigned long long>(unit));
    }
    notifyComplete(unit, payload);
    if (!config_.discardResults)
        report_.results[unit] = std::move(payload);
    if (!from_journal)
        maybeCompact();
    (void)attempt;
}

void
Supervisor::failUnit(uint64_t unit, uint32_t attempt,
                     const std::string &error, double now)
{
    if (unit >= unitCount_ || report_.completed[unit])
        return;
    lastError_[unit] = error;
    if (attempt >= config_.maxAttempts) {
        report_.quarantined.push_back(
            ProcUnitFailure{unit, attempt, error});
        ++quarantinedCount_;
        incidents_.push_back(
            Incident{unit, attempt, "quarantine", error});
        MetricsRegistry::global()
            .counter("proc.quarantined_units")
            .add();
        warn("proc supervisor: unit %llu quarantined after %u "
             "attempts: %s",
             static_cast<unsigned long long>(unit), attempt,
             error.c_str());
        return;
    }
    const double backoff = config_.retryBackoffSec *
        static_cast<double>(1ull << (attempt - 1));
    pending_.push_back(PendingUnit{unit, attempt + 1, now + backoff});
    ++report_.retries;
    incidents_.push_back(Incident{unit, attempt, "retry", error});
    MetricsRegistry::global().counter("proc.retries").add();
}

void
Supervisor::handleFrame(WorkerSlot &slot, Frame &frame, double now)
{
    switch (frame.type) {
      case FrameType::Heartbeat:
        slot.lastBeat = now;
        break;
      case FrameType::Result:
        slot.lastBeat = now;
        if (slot.busy && frame.unit == slot.unit)
            slot.busy = false;
        completeUnit(frame.unit, frame.attempt,
                     std::move(frame.payload), false);
        break;
      case FrameType::WorkerError:
        slot.lastBeat = now;
        if (slot.busy && frame.unit == slot.unit)
            slot.busy = false;
        failUnit(frame.unit, frame.attempt, frame.payload, now);
        break;
      default:
        // Dispatch/Shutdown never travel worker -> supervisor; the
        // parser accepted the frame, so just ignore it.
        break;
    }
}

void
Supervisor::drainWorkerPipe(WorkerSlot &slot, double now)
{
    char buf[64 * 1024];
    for (;;) {
        const ssize_t r = ::read(slot.fromChild, buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;  // EAGAIN or real error: stop draining
        }
        if (r == 0)
            break;
        slot.parser.feed(buf, static_cast<size_t>(r));
    }
    Frame frame;
    while (slot.parser.next(&frame))
        handleFrame(slot, frame, now);
    if (slot.parser.corrupted() && slot.pid > 0) {
        warn("proc supervisor: worker %d stream corrupted; killing",
             static_cast<int>(slot.pid));
        ::kill(slot.pid, SIGKILL);
    }
}

void
Supervisor::reapWorkers(double now)
{
    for (auto &slot : slots_) {
        if (slot.pid <= 0)
            continue;
        int status = 0;
        const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
        if (r != slot.pid)
            continue;
        // Salvage any results written before death: a timeout kill
        // can race a result already sitting in the pipe.
        drainWorkerPipe(slot, now);
        ::close(slot.toChild);
        ::close(slot.fromChild);
        slot.toChild = slot.fromChild = -1;
        const pid_t died = slot.pid;
        slot.pid = -1;
        if (slot.busy) {
            slot.busy = false;
            ++report_.workerCrashes;
            MetricsRegistry::global()
                .counter("proc.worker_crashes")
                .add();
            const std::string why = describeExit(status);
            incidents_.push_back(
                Incident{slot.unit, slot.attempt, "crash", why});
            warn("proc supervisor: worker %d died (%s) while running "
                 "unit %llu attempt %u",
                 static_cast<int>(died), why.c_str(),
                 static_cast<unsigned long long>(slot.unit),
                 slot.attempt);
            failUnit(slot.unit, slot.attempt, why, now);
        }
    }
}

void
Supervisor::dispatchEligible(double now)
{
    for (auto &slot : slots_) {
        if (slot.pid <= 0 || slot.busy)
            continue;
        // First pending unit whose backoff has elapsed and that was
        // not completed while it waited (late duplicate results).
        auto it = pending_.begin();
        while (it != pending_.end() &&
               (it->eligibleAt > now || report_.completed[it->unit]))
            it = report_.completed[it->unit] ? pending_.erase(it)
                                            : std::next(it);
        if (it == pending_.end())
            continue;
        const PendingUnit unit = *it;
        pending_.erase(it);

        Frame dispatch;
        dispatch.type = FrameType::Dispatch;
        dispatch.unit = unit.unit;
        dispatch.attempt = unit.attempt;
        const std::string bytes = encodeFrame(dispatch);
        if (!writeAll(slot.toChild, bytes.data(), bytes.size())) {
            // Broken dispatch pipe: the worker is dead or dying; put
            // the unit back and let reap handle the corpse.
            pending_.push_front(unit);
            ::kill(slot.pid, SIGKILL);
            continue;
        }
        slot.busy = true;
        slot.unit = unit.unit;
        slot.attempt = unit.attempt;
        slot.unitStart = now;
        slot.lastBeat = now;
    }
}

void
Supervisor::pollWorkers(double now)
{
    std::vector<pollfd> fds;
    std::vector<size_t> owner;
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].pid <= 0)
            continue;
        fds.push_back(pollfd{slots_[i].fromChild, POLLIN, 0});
        owner.push_back(i);
    }
    if (fds.empty()) {
        // Nothing to listen to (all workers dead or not yet spawned):
        // sleep one scheduling quantum instead of spinning.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return;
    }
    const int r =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
    if (r <= 0)
        return;
    for (size_t k = 0; k < fds.size(); ++k)
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
            drainWorkerPipe(slots_[owner[k]], now);
}

void
Supervisor::enforceWatchdogs(double now)
{
    for (auto &slot : slots_) {
        if (slot.pid <= 0 || !slot.busy)
            continue;
        const bool timed_out =
            now - slot.unitStart > config_.unitTimeoutSec;
        const bool silent =
            now - slot.lastBeat > config_.heartbeatTimeoutSec;
        if (!timed_out && !silent)
            continue;
        warn("proc supervisor: unit %llu attempt %u %s; killing "
             "worker %d",
             static_cast<unsigned long long>(slot.unit), slot.attempt,
             timed_out ? "exceeded its timeout" : "stopped heartbeating",
             static_cast<int>(slot.pid));
        ::kill(slot.pid, SIGKILL);
        // reapWorkers() turns the corpse into the crash/retry path.
    }
}

void
Supervisor::shutdownWorkers()
{
    Frame bye;
    bye.type = FrameType::Shutdown;
    const std::string bytes = encodeFrame(bye);
    for (auto &slot : slots_) {
        if (slot.pid <= 0)
            continue;
        if (!writeAll(slot.toChild, bytes.data(), bytes.size()))
            ::kill(slot.pid, SIGKILL);
        ::close(slot.toChild);
        slot.toChild = -1;
    }
    const double deadline = monotonicSec() + 5.0;
    for (auto &slot : slots_) {
        if (slot.pid <= 0)
            continue;
        int status = 0;
        for (;;) {
            const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
            if (r == slot.pid || r < 0)
                break;
            if (monotonicSec() > deadline) {
                ::kill(slot.pid, SIGKILL);
                ::waitpid(slot.pid, &status, 0);
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
        if (slot.fromChild >= 0)
            ::close(slot.fromChild);
        slot.pid = -1;
        slot.fromChild = -1;
    }
}

void
Supervisor::emitTrace()
{
    TraceSession *session = TraceSession::active();
    if (session == nullptr || incidents_.empty())
        return;
    // Incidents in (unit, attempt, kind) order: the trace is a
    // function of *what* failed, never of when the supervisor
    // observed it.
    std::sort(incidents_.begin(), incidents_.end(),
              [](const Incident &a, const Incident &b) {
                  if (a.unit != b.unit)
                      return a.unit < b.unit;
                  if (a.attempt != b.attempt)
                      return a.attempt < b.attempt;
                  return std::strcmp(a.kind, b.kind) < 0;
              });
    RunTrace trace("proc:supervisor");
    trace.setMeta("units_total", uint64_t(unitCount_));
    trace.setMeta("units_resumed", report_.unitsResumed);
    trace.setMeta("worker_crashes", report_.workerCrashes);
    trace.setMeta("retries", report_.retries);
    trace.setMeta("quarantined",
                  uint64_t(report_.quarantined.size()));
    for (const auto &incident : incidents_)
        trace.instant(0.0, "proc", incident.kind,
                      {{"unit", incident.unit},
                       {"attempt", incident.attempt},
                       {"detail", incident.detail}});
    session->submit(std::move(trace));
}

ProcSweepReport
Supervisor::run()
{
    markPrecompletedPrefix();
    resumeFromJournal();

    for (uint64_t u = 0; u < unitCount_; ++u)
        if (!report_.completed[u])
            pending_.push_back(PendingUnit{u, 1, 0.0});

    if (pending_.empty()) {
        journal_.close();
        MetricsRegistry::global()
            .counter("proc.units_resumed")
            .add(report_.unitsResumed);
        MetricsRegistry::global()
            .counter("proc.units_precompleted")
            .add(report_.unitsPrecompleted);
        return std::move(report_);
    }

    // Drain on SIGINT/SIGTERM; ignore SIGPIPE around pipe writes.
    g_drainSignal.store(0, std::memory_order_relaxed);
    g_drainCount.store(0, std::memory_order_relaxed);
    struct sigaction drain_action = {};
    drain_action.sa_handler = drainHandler;
    ::sigemptyset(&drain_action.sa_mask);
    struct sigaction old_int, old_term, old_pipe;
    struct sigaction ignore_pipe = {};
    ignore_pipe.sa_handler = SIG_IGN;
    ::sigemptyset(&ignore_pipe.sa_mask);
    ::sigaction(SIGINT, &drain_action, &old_int);
    ::sigaction(SIGTERM, &drain_action, &old_term);
    ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

    const uint32_t worker_count = std::max(1u, config_.workers);
    slots_.resize(worker_count);

    bool draining = false;
    while (!finished()) {
        const double now = monotonicSec();

        if (!draining &&
            g_drainCount.load(std::memory_order_relaxed) > 0) {
            draining = true;
            report_.drained = true;
            report_.drainSignal =
                g_drainSignal.load(std::memory_order_relaxed);
            inform("proc supervisor: draining on signal %d (%llu/%llu "
                   "units done); in-flight units will finish and "
                   "journal",
                   report_.drainSignal,
                   static_cast<unsigned long long>(doneCount_),
                   static_cast<unsigned long long>(unitCount_));
        }
        if (draining && !forcedStop_ &&
            g_drainCount.load(std::memory_order_relaxed) > 1) {
            forcedStop_ = true;
            for (auto &slot : slots_)
                if (slot.pid > 0 && slot.busy)
                    ::kill(slot.pid, SIGKILL);
        }

        reapWorkers(now);
        if (draining) {
            if (!anyBusy())
                break;
        } else {
            // Keep the fleet at strength while work remains.
            const uint64_t open_units =
                unitCount_ - doneCount_ - quarantinedCount_;
            uint64_t live = 0;
            for (auto &slot : slots_)
                if (slot.pid > 0)
                    ++live;
            for (auto &slot : slots_) {
                if (live >= open_units)
                    break;
                if (slot.pid <= 0) {
                    spawnWorker(slot);
                    ++live;
                }
            }
            dispatchEligible(now);
        }
        pollWorkers(now);
        enforceWatchdogs(monotonicSec());
    }

    shutdownWorkers();
    journal_.close();

    ::sigaction(SIGINT, &old_int, nullptr);
    ::sigaction(SIGTERM, &old_term, nullptr);
    ::sigaction(SIGPIPE, &old_pipe, nullptr);

    MetricsRegistry::global()
        .counter("proc.units_run")
        .add(report_.unitsRun);
    MetricsRegistry::global()
        .counter("proc.units_resumed")
        .add(report_.unitsResumed);
    MetricsRegistry::global()
        .counter("proc.units_precompleted")
        .add(report_.unitsPrecompleted);
    emitTrace();
    return std::move(report_);
}

} // namespace

ProcSweepReport
runProcSweep(const ProcSweepConfig &config, uint64_t unit_count,
             const ProcUnitFn &run_unit)
{
    if (!run_unit)
        fatal("runProcSweep: null unit function");
    Supervisor supervisor(config, unit_count, run_unit);
    return supervisor.run();
}

} // namespace dora
