/**
 * @file
 * Framed pipe protocol between the sweep supervisor and its worker
 * subprocesses (DESIGN.md §5f).
 *
 * Every message travelling either direction is one frame:
 *
 *   magic   u32   'DPF1' — resync sentinel
 *   type    u8    Dispatch / Result / Heartbeat / WorkerError
 *   unit    u64   work-unit index (0 for pure heartbeats)
 *   attempt u32   1-based attempt number of that unit
 *   len     u32   payload byte count
 *   payload u8[len]
 *   fnv     u64   FNV-1a over type..payload (everything after magic)
 *
 * The parser is incremental (pipes deliver arbitrary fragments) and
 * treats any malformed byte — wrong magic, oversized length, checksum
 * mismatch — as *stream corruption*, not a skippable frame: a desynced
 * worker pipe cannot be trusted again, so the supervisor kills and
 * respawns the worker, which is exactly the crash path frames exist to
 * make detectable.
 */

#ifndef DORA_EXEC_PROC_WIRE_HH
#define DORA_EXEC_PROC_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace dora
{

/** Message kinds of the supervisor/worker pipe protocol. */
enum class FrameType : uint8_t
{
    Dispatch = 1,     //!< supervisor -> worker: run this unit
    Result = 2,       //!< worker -> supervisor: serialized unit result
    Heartbeat = 3,    //!< worker -> supervisor: liveness while working
    WorkerError = 4,  //!< worker -> supervisor: unit failed in-process
    Shutdown = 5,     //!< supervisor -> worker: exit cleanly
};

/** One decoded protocol message. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    uint64_t unit = 0;
    uint32_t attempt = 0;
    std::string payload;
};

/** Frames larger than this are rejected as corruption (64 MiB). */
constexpr uint32_t kMaxFramePayload = 64u * 1024 * 1024;

/** Serialize @p frame into its wire form (magic through checksum). */
std::string encodeFrame(const Frame &frame);

/**
 * Incremental frame decoder over an arbitrary byte stream.
 * feed() bytes as they arrive, then drain next() until it returns
 * false. After corrupted() turns true the parser stays dead — the
 * owning stream must be torn down.
 */
class FrameParser
{
  public:
    /** Append raw bytes read from the pipe. */
    void feed(const char *data, size_t n);

    /**
     * Extract the next complete frame into @p out.
     * @return true when a valid frame was produced; false when more
     *         bytes are needed or the stream is corrupted.
     */
    [[nodiscard]] bool next(Frame *out);

    /** True once any malformed byte has been seen (terminal). */
    bool corrupted() const { return corrupted_; }

  private:
    std::string buf_;
    size_t consumed_ = 0;  //!< prefix of buf_ already decoded
    bool corrupted_ = false;
};

} // namespace dora

#endif // DORA_EXEC_PROC_WIRE_HH
