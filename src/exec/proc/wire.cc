#include "exec/proc/wire.hh"

#include <cstring>

#include "common/rng.hh"

namespace dora
{

namespace
{

constexpr uint32_t kMagic = 0x31465044u;  // "DPF1" little-endian
constexpr size_t kHeaderBytes = 4 + 1 + 8 + 4 + 4;
constexpr size_t kChecksumBytes = 8;

void
putRaw(std::string &out, const void *p, size_t n)
{
    out.append(static_cast<const char *>(p), n);
}

bool
validType(uint8_t t)
{
    return t >= static_cast<uint8_t>(FrameType::Dispatch) &&
        t <= static_cast<uint8_t>(FrameType::Shutdown);
}

} // namespace

std::string
encodeFrame(const Frame &frame)
{
    std::string out;
    out.reserve(kHeaderBytes + frame.payload.size() + kChecksumBytes);
    putRaw(out, &kMagic, sizeof(kMagic));
    const uint8_t type = static_cast<uint8_t>(frame.type);
    putRaw(out, &type, sizeof(type));
    putRaw(out, &frame.unit, sizeof(frame.unit));
    putRaw(out, &frame.attempt, sizeof(frame.attempt));
    const uint32_t len = static_cast<uint32_t>(frame.payload.size());
    putRaw(out, &len, sizeof(len));
    out += frame.payload;
    const uint64_t fnv = hashLabel(
        std::string_view(out.data() + sizeof(kMagic),
                         out.size() - sizeof(kMagic)));
    putRaw(out, &fnv, sizeof(fnv));
    return out;
}

void
FrameParser::feed(const char *data, size_t n)
{
    if (corrupted_)
        return;
    // Compact the already-decoded prefix before growing (keeps the
    // buffer bounded by one in-flight frame, not the whole stream).
    if (consumed_ > 0) {
        buf_.erase(0, consumed_);
        consumed_ = 0;
    }
    buf_.append(data, n);
}

bool
FrameParser::next(Frame *out)
{
    if (corrupted_)
        return false;
    const size_t avail = buf_.size() - consumed_;
    if (avail < kHeaderBytes)
        return false;
    const char *p = buf_.data() + consumed_;

    uint32_t magic;
    std::memcpy(&magic, p, sizeof(magic));
    uint8_t type;
    std::memcpy(&type, p + 4, sizeof(type));
    uint32_t len;
    std::memcpy(&len, p + 17, sizeof(len));
    if (magic != kMagic || !validType(type) || len > kMaxFramePayload) {
        corrupted_ = true;
        return false;
    }
    const size_t total = kHeaderBytes + len + kChecksumBytes;
    if (avail < total)
        return false;

    uint64_t fnv;
    std::memcpy(&fnv, p + kHeaderBytes + len, sizeof(fnv));
    const uint64_t expect = hashLabel(std::string_view(
        p + sizeof(magic), kHeaderBytes - sizeof(magic) + len));
    if (fnv != expect) {
        corrupted_ = true;
        return false;
    }

    out->type = static_cast<FrameType>(type);
    std::memcpy(&out->unit, p + 5, sizeof(out->unit));
    std::memcpy(&out->attempt, p + 13, sizeof(out->attempt));
    out->payload.assign(p + kHeaderBytes, len);
    consumed_ += total;
    return true;
}

} // namespace dora
