#include "exec/thread_pool.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace dora
{

namespace
{

/** Parse a strictly positive integer; 0 on failure. */
unsigned
parsePositive(const char *text)
{
    if (text == nullptr || *text == '\0')
        return 0;
    char *end = nullptr;
    const unsigned long value = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || value == 0 || value > 1024)
        return 0;
    return static_cast<unsigned>(value);
}

} // namespace

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
defaultJobCount()
{
    if (const char *env = envNonEmpty("DORA_JOBS")) {
        const unsigned jobs = parsePositive(env);
        if (jobs > 0)
            return jobs;
        warn("DORA_JOBS='%s' is not a positive integer; using hardware "
             "concurrency (%u)", env, hardwareJobs());
    }
    return hardwareJobs();
}

unsigned
jobCountFromArgs(int argc, char **argv)
{
    // cliFlagValue fatal()s on a trailing bare `--jobs` (previously it
    // silently fell through to the default) and makes the last
    // occurrence win so wrapper scripts can append overrides.
    if (const auto value = cliFlagValue(argc, argv, "--jobs"))
        return static_cast<unsigned>(
            cliParseInt(*value, "--jobs", 1, 1024));
    return defaultJobCount();
}

ThreadPool::ThreadPool(unsigned jobs)
    : jobs_(jobs == 0 ? 1 : jobs)
{
    workers_.reserve(jobs_ - 1);
    for (unsigned w = 1; w < jobs_; ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Batch *batch = nullptr;
        {
            MutexLock lock(mutex_);
            // Explicit wait loop (not the predicate overload): the
            // guarded fields are read here, where the analysis can see
            // mutex_ is held, instead of inside an unannotated lambda.
            while (!stopping_ &&
                   !(batch_ != nullptr && generation_ != seen))
                workCv_.wait(lock);
            if (stopping_)
                return;
            seen = generation_;
            batch = batch_;
            // Registering inside the same critical section that
            // publishes the batch pointer keeps the caller from
            // retiring the batch while this worker still holds it.
            ++batch->workersInside;
        }
        runBatch(*batch);
        {
            MutexLock lock(mutex_);
            --batch->workersInside;
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::runBatch(Batch &batch)
{
    // Cached registry lookups: one-time name resolution, then each job
    // costs two relaxed atomic ops and a clock read. Wall-clock
    // observations stay in the metrics registry (stderr only) — never
    // in trace artifacts, which must be byte-identical at any job
    // count.
    static MetricCounter &jobs_run =
        MetricsRegistry::global().counter("exec.jobs");
    static MetricHistogram &job_wall_sec =
        MetricsRegistry::global().histogram("exec.job_wall_sec");
    static MetricGauge &queue_depth =
        MetricsRegistry::global().gauge("exec.queue_depth");
    for (;;) {
        const size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.n)
            return;
        queue_depth.set(static_cast<double>(batch.n - i - 1));
        const auto job_start = std::chrono::steady_clock::now();
        try {
            (*batch.fn)(i);
        } catch (...) {
            MutexLock lock(batch.errorMutex);
            if (!batch.error || i < batch.errorIndex) {
                batch.error = std::current_exception();
                batch.errorIndex = i;
            }
        }
        job_wall_sec.record(std::chrono::duration<double>(
            std::chrono::steady_clock::now() - job_start).count());
        jobs_run.add();
        batch.done.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::forEach(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs_ == 1 || n == 1) {
        // Exact legacy path: plain serial loop, natural exception flow.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    Batch batch;
    batch.n = n;
    batch.fn = &fn;
    {
        MutexLock lock(mutex_);
        batch_ = &batch;
        ++generation_;
    }
    workCv_.notify_all();

    // The caller is the jobs_-th worker.
    runBatch(batch);

    {
        MutexLock lock(mutex_);
        // The batch is drained only when every index ran AND every
        // worker has left runBatch — a worker's final (empty-handed)
        // next.fetch_add must not outlive this stack frame.
        while (batch.done.load(std::memory_order_acquire) != batch.n ||
               batch.workersInside != 0)
            doneCv_.wait(lock);
        // Detach the batch; late-waking workers re-check batch_ under
        // the lock and keep waiting.
        batch_ = nullptr;
    }
    // The drain above made workers quiescent, but the analysis (and
    // TSan) still wants the guarded read under its lock.
    std::exception_ptr error;
    {
        MutexLock lock(batch.errorMutex);
        error = batch.error;
    }
    if (error)
        std::rethrow_exception(error);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &fn,
            unsigned jobs)
{
    if (jobs == 0)
        jobs = defaultJobCount();
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (jobs > n)
        jobs = static_cast<unsigned>(n);
    ThreadPool pool(jobs);
    pool.forEach(n, fn);
}

} // namespace dora
