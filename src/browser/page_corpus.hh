/**
 * @file
 * The 18-page browsing corpus.
 *
 * Stand-ins for the paper's "Alexa top 500" pages (Section IV-B),
 * with feature vectors spanning the complexity range the paper reports
 * (load times from a few hundred milliseconds to ~4 s when run alone)
 * and the Table III low/high classification. Fourteen pages form the
 * model-training set; four (Twitter, Alibaba, Firefox, Imgur) are held
 * out to build the Webpage-Neutral test workloads.
 */

#ifndef DORA_BROWSER_PAGE_CORPUS_HH
#define DORA_BROWSER_PAGE_CORPUS_HH

#include <vector>

#include "browser/web_page.hh"

namespace dora
{

/**
 * Accessors for the fixed page corpus. All functions return references
 * into a process-lifetime table.
 */
class PageCorpus
{
  public:
    /** All 18 pages, ordered roughly by complexity. */
    static const std::vector<WebPage> &all();

    /** Page by name; fatal() if unknown. */
    static const WebPage &byName(const std::string &name);

    /** The 14 training-set pages. */
    static std::vector<const WebPage *> trainingSet();

    /** The 4 held-out test pages. */
    static std::vector<const WebPage *> testSet();
};

} // namespace dora

#endif // DORA_BROWSER_PAGE_CORPUS_HH
