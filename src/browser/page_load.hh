/**
 * @file
 * A page-load in flight: the browser's main and helper render threads
 * advancing through the phase sequence with per-phase barriers.
 *
 * Matches the paper's methodology: Firefox occupies two cores (mobile
 * thread-level parallelism hovers around 2), so each phase's work is
 * split into a serial share executed by the main thread and a parallel
 * share divided between the two threads; both must finish a phase
 * before the next begins. Both threads reference the same address
 * region, so they share lines in the L2 exactly as two browser threads
 * do.
 */

#ifndef DORA_BROWSER_PAGE_LOAD_HH
#define DORA_BROWSER_PAGE_LOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "browser/render_cost.hh"
#include "browser/web_page.hh"
#include "sim/task.hh"

namespace dora
{

class PageLoad;
class RunTrace;

/**
 * Task facade for one browser thread (main or helper) of a PageLoad.
 */
class RenderThreadTask : public Task
{
  public:
    enum class Role { Main, Helper };

    RenderThreadTask(PageLoad &owner, Role role);

    TaskDemand demand(double now_sec) override;
    void advance(const TickResult &result, double dt_sec) override;
    bool finished() const override;
    const std::string &name() const override { return name_; }
    void reset() override;

  private:
    PageLoad &owner_;
    Role role_;
    std::string name_;
};

/**
 * Owns the phase state of one page load and exposes the two thread
 * tasks. Construct once per experiment run; reset() restarts the load
 * (fresh streams, zero elapsed time).
 */
class PageLoad
{
  public:
    /**
     * @param page        page to load
     * @param cost        phase cost model
     * @param stream_salt disambiguates address-space bases and RNG
     *                    seeds between concurrent PageLoads (tests)
     */
    PageLoad(const WebPage &page, const RenderCostModel &cost,
             uint64_t stream_salt = 0);

    /** Main-thread task (pin to the first browser core). */
    Task &mainTask() { return main_; }

    /** Helper-thread task (pin to the second browser core). */
    Task &helperTask() { return helper_; }

    /** True when every phase's work is fully retired. */
    bool finished() const;

    /**
     * Wall-clock load time in seconds; only meaningful once finished()
     * (panics otherwise).
     */
    double loadTimeSec() const;

    /** Elapsed load time so far (seconds). */
    double elapsedSec() const { return elapsedSec_; }

    /** Name of the phase currently executing ("done" when finished). */
    const std::string &currentPhaseName() const;

    /** The page being loaded. */
    const WebPage &page() const { return page_; }

    /** Restart the load from scratch. */
    void reset();

    /**
     * Attach a trace sink (null detaches): emits begin/end events for
     * every render phase, timestamped at @p base_sec plus the elapsed
     * load time, so phase durations land on the run's simulated
     * timeline. Call after binding the load, before the first tick.
     */
    void setTrace(RunTrace *trace, double base_sec);

    /**
     * Serialize load progress (phase cursor, remaining work, streams).
     * Trace attachment is deliberately excluded: snapshots are gated to
     * untraced runs (RunContext refuses otherwise).
     */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restore into the same PageLoad object the snapshot was taken
     * from (streams restore in place). All-or-nothing.
     */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    friend class RenderThreadTask;

    TaskDemand demandFor(RenderThreadTask::Role role);
    void advanceFor(RenderThreadTask::Role role, const TickResult &result,
                    double dt_sec);
    void maybeAdvancePhase();
    void rebuildStreams();

    const WebPage &page_;  // dora:snapshot-exclude(construction identity)
    RenderCostModel cost_;  // dora:snapshot-exclude(derived from page spec)
    uint64_t streamSalt_;  // dora:snapshot-exclude(construction identity)
    // dora:snapshot-exclude(fixed phase table from the page spec)
    std::vector<RenderPhase> phases_;

    size_t phase_ = 0;
    std::vector<double> remainMain_;
    std::vector<double> remainHelper_;
    double elapsedSec_ = 0.0;

    // dora:snapshot-exclude(observer hook, rebound by the harness)
    RunTrace *trace_ = nullptr;  //!< null when tracing is disabled
    // dora:snapshot-exclude(observer hook, rebound by the harness)
    double traceBaseSec_ = 0.0;

    std::unique_ptr<AddressStream> mainStream_;
    std::unique_ptr<AddressStream> helperStream_;

    RenderThreadTask main_;  // dora:snapshot-exclude(stateless facade)
    RenderThreadTask helper_;  // dora:snapshot-exclude(stateless facade)

    static const std::string kDoneName;
};

} // namespace dora

#endif // DORA_BROWSER_PAGE_LOAD_HH
