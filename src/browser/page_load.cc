#include "browser/page_load.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "common/units.hh"
#include "obs/trace.hh"

namespace dora
{

const std::string PageLoad::kDoneName = "done";

RenderThreadTask::RenderThreadTask(PageLoad &owner, Role role)
    : owner_(owner), role_(role),
      name_(owner.page().name +
            (role == Role::Main ? ":render-main" : ":render-helper"))
{
}

TaskDemand
RenderThreadTask::demand(double now_sec)
{
    (void)now_sec;
    return owner_.demandFor(role_);
}

void
RenderThreadTask::advance(const TickResult &result, double dt_sec)
{
    owner_.advanceFor(role_, result, dt_sec);
}

bool
RenderThreadTask::finished() const
{
    return owner_.finished();
}

void
RenderThreadTask::reset()
{
    // PageLoad::reset() restores both facades; individual facade resets
    // are idempotent via the owner.
    owner_.reset();
}

PageLoad::PageLoad(const WebPage &page, const RenderCostModel &cost,
                   uint64_t stream_salt)
    : page_(page), cost_(cost), streamSalt_(stream_salt),
      phases_(cost.phases(page)),
      main_(*this, RenderThreadTask::Role::Main),
      helper_(*this, RenderThreadTask::Role::Helper)
{
    if (phases_.empty())
        fatal("PageLoad: page '%s' produced no phases", page.name.c_str());
    reset();
}

void
PageLoad::rebuildStreams()
{
    // Both browser threads reference the same data region (shared DOM,
    // style structures, layer buffers), so they share lines in the L2.
    const uint64_t base_line = (1 + streamSalt_) << 28;
    const AddressStreamSpec &spec = phases_[std::min(
        phase_, phases_.size() - 1)].stream;
    // dora:stream-tag-shared(page: namespace shared with the salt)
    Rng seed("page:" + page_.name + "/salt:" +
             std::to_string(streamSalt_));
    mainStream_ = std::make_unique<AddressStream>(spec, base_line,
                                                  seed.fork("main"));
    helperStream_ = std::make_unique<AddressStream>(spec, base_line,
                                                    seed.fork("helper"));
}

void
PageLoad::reset()
{
    phase_ = 0;
    elapsedSec_ = 0.0;
    remainMain_.resize(phases_.size());
    remainHelper_.resize(phases_.size());
    for (size_t p = 0; p < phases_.size(); ++p) {
        const double work = phases_[p].instructions;
        const double parallel = work * phases_[p].parallelFraction;
        remainMain_[p] = (work - parallel) + parallel / 2.0;
        remainHelper_[p] = parallel / 2.0;
    }
    rebuildStreams();
}

bool
PageLoad::finished() const
{
    return phase_ >= phases_.size();
}

double
PageLoad::loadTimeSec() const
{
    if (!finished())
        panic("PageLoad::loadTimeSec: page '%s' still loading",
              page_.name.c_str());
    return elapsedSec_;
}

const std::string &
PageLoad::currentPhaseName() const
{
    return finished() ? kDoneName : phases_[phase_].name;
}

TaskDemand
PageLoad::demandFor(RenderThreadTask::Role role)
{
    TaskDemand d;
    if (finished())
        return d;

    const bool is_main = role == RenderThreadTask::Role::Main;
    const double remaining =
        is_main ? remainMain_[phase_] : remainHelper_[phase_];
    if (remaining <= 0.0)
        return d;  // waiting at the phase barrier

    const RenderPhase &phase = phases_[phase_];
    d.active = true;
    d.baseCpi = phase.baseCpi;
    d.memRefsPerInstr = phase.refsPerInstr;
    d.mlp = phase.mlp;
    d.dutyCycle = 1.0;
    d.instrBudget = remaining;
    d.activityFactor = phase.activityFactor;
    d.stream = is_main ? mainStream_.get() : helperStream_.get();
    return d;
}

void
PageLoad::advanceFor(RenderThreadTask::Role role, const TickResult &result,
                     double dt_sec)
{
    if (finished())
        return;
    const bool is_main = role == RenderThreadTask::Role::Main;
    if (is_main)
        elapsedSec_ += dt_sec;

    double &remaining = is_main ? remainMain_[phase_]
                                : remainHelper_[phase_];
    remaining = std::max(0.0, remaining - result.instructions);
    maybeAdvancePhase();
}

void
PageLoad::setTrace(RunTrace *trace, double base_sec)
{
    trace_ = trace;
    traceBaseSec_ = base_sec;
    if (trace_ && !finished())
        trace_->begin(traceBaseSec_ + elapsedSec_, "page", "phase",
                      {{"phase", phases_[phase_].name}});
}

void
PageLoad::snapshot(SnapshotWriter &w) const
{
    w.beginSection("page", 1);
    w.putU64(static_cast<uint64_t>(phase_));
    w.putDouble(elapsedSec_);
    w.putDoubles(remainMain_);
    w.putDoubles(remainHelper_);
    mainStream_->snapshot(w);
    helperStream_->snapshot(w);
}

bool
PageLoad::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("page", 1))
        return false;
    uint64_t phase;
    double elapsed;
    std::vector<double> remain_main, remain_helper;
    if (!r.getU64(&phase) || !r.getDouble(&elapsed) ||
        !r.getDoubles(&remain_main) || !r.getDoubles(&remain_helper))
        return false;
    if (phase > phases_.size() || remain_main.size() != phases_.size() ||
        remain_helper.size() != phases_.size())
        return false;
    if (!mainStream_->tryRestore(r) || !helperStream_->tryRestore(r))
        return false;
    phase_ = static_cast<size_t>(phase);
    elapsedSec_ = elapsed;
    remainMain_ = std::move(remain_main);
    remainHelper_ = std::move(remain_helper);
    return true;
}

void
PageLoad::maybeAdvancePhase()
{
    while (!finished() && remainMain_[phase_] <= 0.0 &&
           remainHelper_[phase_] <= 0.0) {
        if (trace_)
            trace_->end(traceBaseSec_ + elapsedSec_, "page", "phase");
        ++phase_;
        if (!finished()) {
            // Same data region, new locality shape for the new phase.
            mainStream_->reshape(phases_[phase_].stream);
            helperStream_->reshape(phases_[phase_].stream);
            if (trace_)
                trace_->begin(traceBaseSec_ + elapsedSec_, "page",
                              "phase",
                              {{"phase", phases_[phase_].name}});
        } else if (trace_) {
            trace_->instant(traceBaseSec_ + elapsedSec_, "page",
                            "load_complete",
                            {{"load_time_sec", elapsedSec_}});
        }
    }
}

} // namespace dora
