#include "browser/page_corpus.hh"

#include <cmath>

#include "common/logging.hh"

namespace dora
{

namespace
{

WebPage
makePage(const char *name, double nodes, double cls, double href,
         double a, double div, double content_factor,
         double script_factor, PageComplexity complexity, bool training)
{
    WebPage p;
    p.name = name;
    p.features.domNodes = nodes;
    p.features.classAttrs = cls;
    p.features.hrefAttrs = href;
    p.features.aTags = a;
    p.features.divTags = div;
    // Payload size and script weight track the visible structure of the
    // page (image/CSS bytes grow with markup; script work grows with
    // interactive elements), with a bounded idiosyncratic factor. This
    // mirrors why Zhu et al.'s five features predict load time well on
    // real pages: the latent costs correlate with the visible ones.
    p.contentBytes = content_factor * 800.0 * (nodes + 2.5 * div);
    p.scriptWeight =
        script_factor * (0.3 + 0.028 * std::sqrt(a + href));
    p.expectedClass = complexity;
    p.trainingSet = training;
    return p;
}

std::vector<WebPage>
buildCorpus()
{
    // Feature vectors deliberately span *ratios*, not just scale:
    // class-heavy (twitter), link-directory (hao123, ebay),
    // content-heavy (youtube, imgur, instagram), script-heavy
    // (firefox, aliexpress) — so the regression design matrix has full
    // column rank and held-out pages interpolate rather than
    // extrapolate. Load times alone at 2.27 GHz range ~0.22 s (alipay)
    // to ~3.1 s (aliexpress), matching the paper's "hundreds of
    // milliseconds to 4 seconds".
    using PC = PageComplexity;
    std::vector<WebPage> pages;
    //                 name       nodes cls   href  a     div   MB   js
    pages.push_back(makePage("alipay", 400, 150, 40, 50, 100,
                             0.90, 0.95, PC::Low, true));
    pages.push_back(makePage("360", 480, 300, 150, 180, 130,
                             0.95, 0.90, PC::Low, true));
    pages.push_back(makePage("twitter", 550, 500, 90, 110, 280,
                             1.05, 1.10, PC::Low, false));
    pages.push_back(makePage("instagram", 500, 420, 60, 70, 260,
                             1.25, 0.90, PC::Low, true));
    pages.push_back(makePage("ebay", 600, 380, 320, 350, 250,
                             0.90, 0.95, PC::Low, true));
    pages.push_back(makePage("alibaba", 800, 520, 260, 290, 300,
                             1.00, 0.95, PC::Low, false));
    pages.push_back(makePage("amazon", 850, 620, 280, 310, 390,
                             1.00, 1.00, PC::Low, true));
    pages.push_back(makePage("bbc", 950, 750, 240, 260, 450,
                             1.10, 0.90, PC::Low, true));
    pages.push_back(makePage("youtube", 900, 700, 160, 190, 480,
                             1.25, 1.05, PC::Low, true));
    pages.push_back(makePage("cnn", 1150, 900, 310, 350, 560,
                             1.00, 1.00, PC::Low, true));
    pages.push_back(makePage("msn", 1300, 1000, 380, 430, 640,
                             1.05, 1.00, PC::Low, true));
    pages.push_back(makePage("reddit", 1500, 1150, 460, 520, 740,
                             0.95, 1.05, PC::Low, true));
    pages.push_back(makePage("firefox", 1800, 1300, 560, 620, 1020,
                             1.05, 1.10, PC::High, false));
    pages.push_back(makePage("imgur", 2200, 1500, 410, 470, 1080,
                             1.12, 0.95, PC::High, false));
    pages.push_back(makePage("imdb", 2184, 1768, 582, 655, 1040,
                             1.00, 1.05, PC::High, true));
    pages.push_back(makePage("espn", 2153, 1838, 567, 630, 1029,
                             1.10, 1.10, PC::High, true));
    pages.push_back(makePage("hao123", 2231, 1261, 1164, 1358, 1067,
                             0.80, 0.90, PC::High, true));
    pages.push_back(makePage("aliexpress", 2600, 2150, 640, 720, 1300,
                             1.05, 1.10, PC::High, true));
    return pages;
}

} // namespace

const std::vector<WebPage> &
PageCorpus::all()
{
    static const std::vector<WebPage> corpus = buildCorpus();
    return corpus;
}

const WebPage &
PageCorpus::byName(const std::string &name)
{
    for (const auto &page : all())
        if (page.name == name)
            return page;
    fatal("PageCorpus: unknown page '%s'", name.c_str());
}

std::vector<const WebPage *>
PageCorpus::trainingSet()
{
    std::vector<const WebPage *> out;
    for (const auto &page : all())
        if (page.trainingSet)
            out.push_back(&page);
    return out;
}

std::vector<const WebPage *>
PageCorpus::testSet()
{
    std::vector<const WebPage *> out;
    for (const auto &page : all())
        if (!page.trainingSet)
            out.push_back(&page);
    return out;
}

} // namespace dora
