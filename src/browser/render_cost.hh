/**
 * @file
 * Rendering-engine cost model: converts a WebPage into the sequence of
 * render phases (parse -> style -> script -> layout -> paint) that the
 * browser task executes.
 *
 * Per Section II-A of the paper, the rendering engine parses the HTML
 * into a DOM tree (cost scales with tags/nodes), resolves CSS (cost
 * scales with class attributes per node — giving the interaction term
 * that makes the paper's interaction response surface win), runs
 * scripts, computes layout, and paints. Each phase carries its own
 * instruction mix and working set, producing the phase behaviour that
 * motivates DORA's 100 ms decision interval (Section IV-C).
 */

#ifndef DORA_BROWSER_RENDER_COST_HH
#define DORA_BROWSER_RENDER_COST_HH

#include <string>
#include <vector>

#include "browser/web_page.hh"
#include "mem/address_stream.hh"

namespace dora
{

/** One render phase of a page load. */
struct RenderPhase
{
    std::string name;
    double instructions = 0.0;      //!< total work for the phase
    double parallelFraction = 0.5;  //!< share splittable to the helper
    double baseCpi = 1.0;
    double refsPerInstr = 0.25;
    double mlp = 1.5;
    double activityFactor = 0.5;
    AddressStreamSpec stream;
};

/** Tunable coefficients of the phase cost model. */
struct RenderCostConfig
{
    // Instruction-cost coefficients (instructions per feature unit).
    double parsePerNode = 0.22e6;
    double parsePerTag = 0.12e6;
    double stylePerNode = 0.18e6;
    double stylePerClass = 0.30e6;
    double styleNodeClass = 0.15;   //!< interaction: nodes x classAttrs
    double scriptPerLink = 0.50e6;  //!< scaled by page scriptWeight
    double layoutPerDiv = 0.25e6;
    double layoutPerNode = 0.10e6;
    double layoutNodeDiv = 0.08;    //!< interaction: nodes x divTags
    double paintPerNode = 0.09e6;
    double paintPerByte = 55.0;
};

/**
 * Builds the phase list for a page.
 */
class RenderCostModel
{
  public:
    explicit RenderCostModel(const RenderCostConfig &config = {});

    /** Phase sequence, in execution order. */
    std::vector<RenderPhase> phases(const WebPage &page) const;

    /** Sum of phase instruction costs. */
    double totalInstructions(const WebPage &page) const;

    const RenderCostConfig &config() const { return config_; }

  private:
    RenderCostConfig config_;
};

} // namespace dora

#endif // DORA_BROWSER_RENDER_COST_HH
