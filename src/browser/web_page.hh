/**
 * @file
 * Web-page description: the five complexity features the paper's models
 * consume (Table I, X1-X5) plus payload properties that drive the
 * rendering workload.
 *
 * Following Zhu et al. (HPCA'13), the paper identifies the number of DOM
 * tree nodes, class and href attributes, and a and div tags as the page
 * properties that best predict load time; all are known *before* the
 * page renders, which is what makes ahead-of-time load-time prediction
 * possible.
 */

#ifndef DORA_BROWSER_WEB_PAGE_HH
#define DORA_BROWSER_WEB_PAGE_HH

#include <string>

namespace dora
{

/** The paper's five static page-complexity features (Table I X1-X5). */
struct WebPageFeatures
{
    double domNodes = 0.0;    //!< X1: number of DOM tree nodes
    double classAttrs = 0.0;  //!< X2: number of class attributes
    double hrefAttrs = 0.0;   //!< X3: number of href attributes
    double aTags = 0.0;       //!< X4: number of <a> tags
    double divTags = 0.0;     //!< X5: number of <div> tags
};

/** Table III load-time class when rendered alone. */
enum class PageComplexity
{
    Low,  //!< loads in < 2 s alone
    High  //!< loads in > 2 s alone
};

/**
 * A page in the corpus: features plus payload properties used by the
 * rendering-engine model (not visible to the predictors).
 */
struct WebPage
{
    std::string name;
    WebPageFeatures features;

    /** Decoded image/CSS payload bytes (drives the paint working set). */
    double contentBytes = 1.0e6;

    /** Relative script-execution weight (drives the script phase). */
    double scriptWeight = 1.0;

    /** Table III class (ground truth; verified by tab03 bench). */
    PageComplexity expectedClass = PageComplexity::Low;

    /** True if the page belongs to the model-training set (14 of 18). */
    bool trainingSet = true;
};

/** Approximate raw HTML size in bytes, derived from the features. */
double htmlBytes(const WebPageFeatures &f);

} // namespace dora

#endif // DORA_BROWSER_WEB_PAGE_HH
