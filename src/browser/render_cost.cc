#include "browser/render_cost.hh"

#include <algorithm>

#include "common/units.hh"

namespace dora
{

double
htmlBytes(const WebPageFeatures &f)
{
    // Rough-but-monotone document size: tag + attribute text.
    return 40.0 * f.domNodes + 24.0 * (f.classAttrs + f.hrefAttrs) +
        16.0 * (f.aTags + f.divTags);
}

RenderCostModel::RenderCostModel(const RenderCostConfig &config)
    : config_(config)
{
}

std::vector<RenderPhase>
RenderCostModel::phases(const WebPage &page) const
{
    const WebPageFeatures &f = page.features;
    const RenderCostConfig &c = config_;
    std::vector<RenderPhase> out;

    // Parse: streaming pass over the HTML text; mostly sequential, small
    // working set, largely serial (speculative tokenization caps TLP).
    {
        RenderPhase p;
        p.name = "parse";
        p.instructions = c.parsePerNode * f.domNodes +
            c.parsePerTag * (f.aTags + f.divTags);
        p.parallelFraction = 0.30;
        p.baseCpi = 0.9;
        p.refsPerInstr = 0.25;
        p.mlp = 2.0;
        p.activityFactor = 0.55;
        p.stream.workingSetBytes =
            std::max(64.0 * 1024, htmlBytes(f)) * 2.0;
        p.stream.hotFraction = 0.95;
        p.stream.hotSetFraction = 0.03;
        p.stream.burstContinueProb = 0.85;
        out.push_back(p);
    }

    // Style: selector matching over the DOM — pointer chasing with an
    // interaction cost in nodes x classAttrs.
    {
        RenderPhase p;
        p.name = "style";
        p.instructions = c.stylePerNode * f.domNodes +
            c.stylePerClass * f.classAttrs +
            c.styleNodeClass * f.domNodes * f.classAttrs;
        p.parallelFraction = 0.70;
        p.baseCpi = 1.1;
        p.refsPerInstr = 0.30;
        p.mlp = 1.4;
        p.activityFactor = 0.50;
        p.stream.workingSetBytes = 96.0 * f.domNodes +
            64.0 * f.classAttrs + 128.0 * 1024;
        p.stream.hotFraction = 0.94;
        p.stream.hotSetFraction = 0.08;
        p.stream.burstContinueProb = 0.15;
        out.push_back(p);
    }

    // Script: branchy JS execution over a heap sized by page weight.
    {
        RenderPhase p;
        p.name = "script";
        p.instructions = page.scriptWeight * c.scriptPerLink *
            (f.aTags + f.hrefAttrs);
        p.parallelFraction = 0.35;
        p.baseCpi = 1.3;
        p.refsPerInstr = 0.22;
        p.mlp = 1.3;
        p.activityFactor = 0.60;
        p.stream.workingSetBytes = 0.9e6 * page.scriptWeight + 256e3;
        p.stream.hotFraction = 0.93;
        p.stream.hotSetFraction = 0.006;
        p.stream.burstContinueProb = 0.30;
        out.push_back(p);
    }

    // Layout: box-tree traversal; moderately parallel.
    {
        RenderPhase p;
        p.name = "layout";
        p.instructions = c.layoutPerDiv * f.divTags +
            c.layoutPerNode * f.domNodes +
            c.layoutNodeDiv * f.domNodes * f.divTags;
        p.parallelFraction = 0.50;
        p.baseCpi = 1.0;
        p.refsPerInstr = 0.28;
        p.mlp = 1.3;
        p.activityFactor = 0.50;
        p.stream.workingSetBytes = 200.0 * f.domNodes + 256e3;
        p.stream.hotFraction = 0.94;
        p.stream.hotSetFraction = 0.025;
        p.stream.burstContinueProb = 0.40;
        out.push_back(p);
    }

    // Paint: rasterization — streaming over decoded content; SIMD-like
    // IPC and deep MLP, big working set that thrashes the L2.
    {
        RenderPhase p;
        p.name = "paint";
        p.instructions = c.paintPerNode * f.domNodes +
            c.paintPerByte * page.contentBytes;
        p.parallelFraction = 0.80;
        p.baseCpi = 0.7;
        p.refsPerInstr = 0.35;
        p.mlp = 6.0;
        p.activityFactor = 0.65;
        // Tiled rasterization: the active working set is a window over
        // the decoded content, sized to be L2-resident when alone --
        // which is exactly what makes it vulnerable to co-runner
        // eviction.
        p.stream.workingSetBytes = clampTo(
            0.35 * page.contentBytes, 0.8e6, 1.6e6);
        p.stream.hotFraction = 0.93;
        p.stream.hotSetFraction = 0.004;
        p.stream.burstContinueProb = 0.90;
        out.push_back(p);
    }

    return out;
}

double
RenderCostModel::totalInstructions(const WebPage &page) const
{
    double total = 0.0;
    for (const auto &phase : phases(page))
        total += phase.instructions;
    return total;
}

} // namespace dora
