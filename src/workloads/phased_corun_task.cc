#include "workloads/phased_corun_task.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"

namespace dora
{

PhasedCorunTask::PhasedCorunTask(std::vector<CorunPhase> phases,
                                 uint64_t stream_salt)
    : phases_(std::move(phases)), streamSalt_(stream_salt)
{
    if (phases_.empty())
        fatal("PhasedCorunTask: empty schedule");
    name_ = "phased(";
    for (size_t i = 0; i < phases_.size(); ++i) {
        if (phases_[i].kernel == nullptr)
            fatal("PhasedCorunTask: null kernel in segment %zu", i);
        if (i)
            name_ += ",";
        name_ += phases_[i].kernel->name;
    }
    name_ += ")";
    reset();
}

void
PhasedCorunTask::reset()
{
    streams_.clear();
    for (size_t i = 0; i < phases_.size(); ++i) {
        // Distinct address-space region per segment, well above the
        // single-kernel convention ((1000+salt)<<28 in CorunTask).
        const uint64_t base_line =
            (2000 + streamSalt_ * 16 + i) << 28;
        streams_.push_back(std::make_unique<AddressStream>(
            phases_[i].kernel->stream, base_line,
            Rng("phased:" + phases_[i].kernel->name + "/seg:" +
                std::to_string(i) + "/salt:" +
                std::to_string(streamSalt_))));
    }
    startSec_ = -1.0;
}

size_t
PhasedCorunTask::phaseIndexAt(double now_sec) const
{
    const double t0 = startSec_ < 0.0 ? now_sec : startSec_;
    double offset = now_sec - t0;

    double cycle = 0.0;
    for (const auto &phase : phases_) {
        if (phase.durationSec <= 0.0)
            cycle = -1.0;  // open-ended tail: no wrap
        else if (cycle >= 0.0)
            cycle += phase.durationSec;
    }
    if (cycle > 0.0)
        offset = std::fmod(offset, cycle);

    double acc = 0.0;
    for (size_t i = 0; i < phases_.size(); ++i) {
        if (phases_[i].durationSec <= 0.0)
            return i;  // open-ended segment absorbs the rest
        acc += phases_[i].durationSec;
        if (offset < acc)
            return i;
    }
    return phases_.size() - 1;
}

TaskDemand
PhasedCorunTask::demand(double now_sec)
{
    if (startSec_ < 0.0)
        startSec_ = now_sec;
    const size_t idx = phaseIndexAt(now_sec);
    const KernelSpec &spec = *phases_[idx].kernel;

    TaskDemand d;
    d.active = true;
    d.baseCpi = spec.baseCpi;
    d.memRefsPerInstr = spec.refsPerInstr;
    d.mlp = spec.mlp;
    d.dutyCycle = spec.dutyCycle;
    d.instrBudget = 0.0;
    d.activityFactor = spec.activityFactor;
    d.stream = streams_[idx].get();
    return d;
}

void
PhasedCorunTask::advance(const TickResult &result, double dt_sec)
{
    (void)result;
    (void)dt_sec;
}

void
PhasedCorunTask::snapshot(SnapshotWriter &w) const
{
    w.beginSection("pcrn", 1);
    w.putDouble(startSec_);
    w.putSize(streams_.size());
    for (const auto &s : streams_)
        s->snapshot(w);
}

bool
PhasedCorunTask::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("pcrn", 1))
        return false;
    double start;
    size_t count;
    if (!r.getDouble(&start) || !r.getSize(&count) ||
        count != streams_.size())
        return false;
    for (auto &s : streams_)
        if (!s->tryRestore(r))
            return false;
    startSec_ = start;
    return true;
}

} // namespace dora
