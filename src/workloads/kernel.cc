#include "workloads/kernel.hh"

#include "common/logging.hh"

namespace dora
{

const char *
memIntensityName(MemIntensity intensity)
{
    switch (intensity) {
      case MemIntensity::None:
        return "none";
      case MemIntensity::Low:
        return "low";
      case MemIntensity::Medium:
        return "medium";
      case MemIntensity::High:
        return "high";
    }
    return "?";
}

namespace
{

KernelSpec
makeKernel(const char *name, const char *domain, MemIntensity cls,
           double cpi, double refs, double mlp, double duty, double act,
           double ws_bytes, double hot, double hot_set, double burst)
{
    KernelSpec k;
    k.name = name;
    k.domain = domain;
    k.expectedClass = cls;
    k.baseCpi = cpi;
    k.refsPerInstr = refs;
    k.mlp = mlp;
    k.dutyCycle = duty;
    k.activityFactor = act;
    k.stream.workingSetBytes = static_cast<uint64_t>(ws_bytes);
    k.stream.hotFraction = hot;
    k.stream.hotSetFraction = hot_set;
    k.stream.burstContinueProb = burst;
    return k;
}

std::vector<KernelSpec>
buildCatalog()
{
    using MI = MemIntensity;
    std::vector<KernelSpec> kernels;
    // Low intensity: working sets comfortably inside the 2 MB L2.
    kernels.push_back(makeKernel(
        "srad", "image processing", MI::Low,
        0.80, 0.30, 2.5, 0.85, 0.60, 256e3, 0.985, 0.025, 0.80));
    kernels.push_back(makeKernel(
        "heartwall", "image processing", MI::Low,
        0.90, 0.28, 2.0, 0.90, 0.55, 384e3, 0.970, 0.020, 0.70));
    kernels.push_back(makeKernel(
        "kmeans", "clustering analysis", MI::Low,
        0.85, 0.25, 2.2, 0.95, 0.60, 512e3, 0.960, 0.015, 0.90));
    kernels.push_back(makeKernel(
        "hotspot", "temperature management", MI::Low,
        0.80, 0.27, 2.4, 0.80, 0.55, 320e3, 0.975, 0.020, 0.85));
    // Medium intensity: working sets around the L2 capacity.
    kernels.push_back(makeKernel(
        "srad2", "image processing", MI::Medium,
        0.85, 0.28, 2.0, 0.95, 0.60, 2.6e6, 0.950, 0.004, 0.70));
    kernels.push_back(makeKernel(
        "bfs", "graph traversal", MI::Medium,
        1.10, 0.25, 1.3, 0.90, 0.50, 2.8e6, 0.948, 0.003, 0.20));
    kernels.push_back(makeKernel(
        "b+tree", "tree traversal", MI::Medium,
        1.05, 0.25, 1.2, 0.85, 0.50, 3.4e6, 0.945, 0.004, 0.10));
    // High intensity: working sets that thrash the L2 outright.
    kernels.push_back(makeKernel(
        "backprop", "sensor data analysis", MI::High,
        0.95, 0.40, 2.8, 1.00, 0.65, 8.0e6, 0.915, 0.001, 0.60));
    kernels.push_back(makeKernel(
        "nw", "bioinformatics", MI::High,
        0.90, 0.40, 2.5, 0.95, 0.60, 16.0e6, 0.910, 0.0005, 0.60));
    return kernels;
}

} // namespace

const std::vector<KernelSpec> &
KernelCatalog::all()
{
    static const std::vector<KernelSpec> catalog = buildCatalog();
    return catalog;
}

const KernelSpec &
KernelCatalog::byName(const std::string &name)
{
    for (const auto &kernel : all())
        if (kernel.name == name)
            return kernel;
    fatal("KernelCatalog: unknown kernel '%s'", name.c_str());
}

std::vector<const KernelSpec *>
KernelCatalog::byClass(MemIntensity cls)
{
    std::vector<const KernelSpec *> out;
    for (const auto &kernel : all())
        if (kernel.expectedClass == cls)
            out.push_back(&kernel);
    return out;
}

const KernelSpec &
KernelCatalog::representative(MemIntensity cls)
{
    switch (cls) {
      case MemIntensity::Low:
        return byName("kmeans");
      case MemIntensity::Medium:
        return byName("srad2");
      case MemIntensity::High:
        return byName("backprop");
      case MemIntensity::None:
        break;
    }
    fatal("KernelCatalog::representative: no kernel for class '%s'",
          memIntensityName(cls));
}

MemIntensity
classifyMpki(double l2_mpki)
{
    if (l2_mpki < 1.0)
        return MemIntensity::Low;
    if (l2_mpki <= 7.0)
        return MemIntensity::Medium;
    return MemIntensity::High;
}

} // namespace dora
