/**
 * @file
 * Co-scheduled application kernels.
 *
 * Stand-ins for the paper's Rodinia-derived co-run applications
 * (Table III): image processing (srad, srad2, heartwall), clustering
 * (kmeans), thermal simulation (hotspot), graph/tree traversal (bfs,
 * b+tree), sensor-data analysis (backprop), and bioinformatics
 * (needleman-wunsch). Each kernel is described statistically — working
 * set, locality, reference rate — tuned so its *measured* solo L2 MPKI
 * lands in the paper's class band: low < 1, medium 1-7, high > 7.
 */

#ifndef DORA_WORKLOADS_KERNEL_HH
#define DORA_WORKLOADS_KERNEL_HH

#include <string>
#include <vector>

#include "mem/address_stream.hh"

namespace dora
{

/** Memory-intensity class per Table III of the paper. */
enum class MemIntensity
{
    None,    //!< no co-runner (browser alone)
    Low,     //!< L2 MPKI < 1
    Medium,  //!< L2 MPKI in [1, 7]
    High     //!< L2 MPKI > 7
};

/** Human-readable class name. */
const char *memIntensityName(MemIntensity intensity);

/** Statistical description of one co-run kernel. */
struct KernelSpec
{
    std::string name;
    std::string domain;        //!< e.g. "image processing"
    MemIntensity expectedClass = MemIntensity::Low;

    double baseCpi = 1.0;
    double refsPerInstr = 0.25;
    double mlp = 1.5;
    double dutyCycle = 1.0;
    double activityFactor = 0.5;
    AddressStreamSpec stream;
};

/**
 * The fixed kernel table.
 */
class KernelCatalog
{
  public:
    /** All nine kernels, ordered by expected intensity. */
    static const std::vector<KernelSpec> &all();

    /** Kernel by name; fatal() if unknown. */
    static const KernelSpec &byName(const std::string &name);

    /** Kernels in a given class. */
    static std::vector<const KernelSpec *> byClass(MemIntensity cls);

    /**
     * The representative kernel per class used when constructing the
     * 54 workload combinations (one page x one kernel per class).
     */
    static const KernelSpec &representative(MemIntensity cls);
};

/** Classify a measured solo L2 MPKI into the Table III bands. */
MemIntensity classifyMpki(double l2_mpki);

} // namespace dora

#endif // DORA_WORKLOADS_KERNEL_HH
