/**
 * @file
 * A co-scheduled task whose kernel changes over time.
 *
 * The paper's motivation (Section I) is that background work varies:
 * "co-scheduled applications or background processes vary more
 * frequently" than the visited pages. PhasedCorunTask runs a schedule
 * of kernels — e.g. low intensity for 0.5 s, then high intensity — so
 * experiments can watch DORA re-evaluate fopt as the interference it
 * measures (X6/X9) moves under it (the adaptive loop of Fig. 4).
 */

#ifndef DORA_WORKLOADS_PHASED_CORUN_TASK_HH
#define DORA_WORKLOADS_PHASED_CORUN_TASK_HH

#include <memory>
#include <string>
#include <vector>

#include "mem/address_stream.hh"
#include "sim/task.hh"
#include "workloads/kernel.hh"

namespace dora
{

/** One segment of a phased co-runner schedule. */
struct CorunPhase
{
    const KernelSpec *kernel = nullptr;
    /** Segment length; <= 0 means "until the end of the run". */
    double durationSec = 0.0;
};

/**
 * Endless task executing a kernel schedule. After the last segment the
 * schedule wraps around (unless the last segment is open-ended).
 */
class PhasedCorunTask : public Task
{
  public:
    /**
     * @param phases       segment list (non-empty; kernels non-null)
     * @param stream_salt  address-space / RNG disambiguator
     */
    PhasedCorunTask(std::vector<CorunPhase> phases,
                    uint64_t stream_salt = 0);

    TaskDemand demand(double now_sec) override;
    void advance(const TickResult &result, double dt_sec) override;
    bool finished() const override { return false; }
    const std::string &name() const override { return name_; }
    void reset() override;

    /** Index of the segment active at @p now_sec. */
    size_t phaseIndexAt(double now_sec) const;

    /** The schedule. */
    const std::vector<CorunPhase> &phases() const { return phases_; }

    void snapshot(SnapshotWriter &w) const override;
    [[nodiscard]] bool tryRestore(SnapshotReader &r) override;

  private:
    // dora:snapshot-exclude(fixed phase table from the spec)
    std::vector<CorunPhase> phases_;
    uint64_t streamSalt_;  // dora:snapshot-exclude(construction identity)
    std::string name_;  // dora:snapshot-exclude(construction identity)
    /** One stream per segment (kernels own distinct address spaces). */
    std::vector<std::unique_ptr<AddressStream>> streams_;
    double startSec_ = -1.0;
};

} // namespace dora

#endif // DORA_WORKLOADS_PHASED_CORUN_TASK_HH
