/**
 * @file
 * Task wrapper that runs a KernelSpec continuously on a core.
 *
 * Matches the paper's methodology: co-run applications are cross-
 * compiled, pinned to a dedicated core, launched before the page load,
 * and run for the whole measurement (they never finish).
 */

#ifndef DORA_WORKLOADS_CORUN_TASK_HH
#define DORA_WORKLOADS_CORUN_TASK_HH

#include <memory>
#include <string>

#include "mem/address_stream.hh"
#include "sim/task.hh"
#include "workloads/kernel.hh"

namespace dora
{

/**
 * An endless co-scheduled kernel.
 */
class CorunTask : public Task
{
  public:
    /**
     * @param spec        kernel description
     * @param stream_salt address-space / RNG disambiguator (use the
     *                    core id or workload index)
     */
    explicit CorunTask(const KernelSpec &spec, uint64_t stream_salt = 0);

    TaskDemand demand(double now_sec) override;
    void advance(const TickResult &result, double dt_sec) override;
    bool finished() const override { return false; }
    const std::string &name() const override { return spec_.name; }
    void reset() override;

    /** The kernel this task executes. */
    const KernelSpec &spec() const { return spec_; }

    /** Instructions retired so far. */
    double instructionsRetired() const { return instructions_; }

    void snapshot(SnapshotWriter &w) const override;
    [[nodiscard]] bool tryRestore(SnapshotReader &r) override;

  private:
    KernelSpec spec_;  // dora:snapshot-exclude(construction config)
    uint64_t streamSalt_;  // dora:snapshot-exclude(construction identity)
    std::unique_ptr<AddressStream> stream_;
    double instructions_ = 0.0;
};

} // namespace dora

#endif // DORA_WORKLOADS_CORUN_TASK_HH
