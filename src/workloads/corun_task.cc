#include "workloads/corun_task.hh"

#include "common/rng.hh"
#include "common/snapshot.hh"

namespace dora
{

CorunTask::CorunTask(const KernelSpec &spec, uint64_t stream_salt)
    : spec_(spec), streamSalt_(stream_salt)
{
    reset();
}

void
CorunTask::reset()
{
    // Kernel address spaces start far above any page-load region
    // (PageLoad uses (1+salt)<<28; kernels use (1000+salt)<<28).
    const uint64_t base_line = (1000 + streamSalt_) << 28;
    stream_ = std::make_unique<AddressStream>(
        spec_.stream, base_line,
        Rng("kernel:" + spec_.name + "/salt:" +
            std::to_string(streamSalt_)));
    instructions_ = 0.0;
}

TaskDemand
CorunTask::demand(double now_sec)
{
    (void)now_sec;
    TaskDemand d;
    d.active = true;
    d.baseCpi = spec_.baseCpi;
    d.memRefsPerInstr = spec_.refsPerInstr;
    d.mlp = spec_.mlp;
    d.dutyCycle = spec_.dutyCycle;
    d.instrBudget = 0.0;  // endless
    d.activityFactor = spec_.activityFactor;
    d.stream = stream_.get();
    return d;
}

void
CorunTask::advance(const TickResult &result, double dt_sec)
{
    (void)dt_sec;
    instructions_ += result.instructions;
}

void
CorunTask::snapshot(SnapshotWriter &w) const
{
    w.beginSection("crun", 1);
    w.putDouble(instructions_);
    stream_->snapshot(w);
}

bool
CorunTask::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("crun", 1))
        return false;
    double instructions;
    if (!r.getDouble(&instructions) || !stream_->tryRestore(r))
        return false;
    instructions_ = instructions;
    return true;
}

} // namespace dora
