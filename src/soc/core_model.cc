#include "soc/core_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "mem/address_stream.hh"

namespace dora
{

double
computeCpi(double base_cpi, double refs_per_instr, double l1_miss_rate,
           double l2_local_miss_rate, double l2_hit_ns, double dram_ns,
           double mlp, double core_mhz)
{
    // ns -> core cycles: cycles = ns * (core_mhz / 1000).
    const double cycles_per_ns = core_mhz / 1000.0;
    const double miss_service_ns =
        l2_hit_ns + l2_local_miss_rate * dram_ns / std::max(1.0, mlp);
    const double stall_cpi = refs_per_instr * l1_miss_rate *
        miss_service_ns * cycles_per_ns;
    return base_cpi + stall_cpi;
}

CoreModel::CoreModel(uint32_t id, const CoreTimingConfig &config)
    : id_(id), config_(config)
{
    if (config.samplingRatio <= 0.0 || config.maxSamples < config.minSamples)
        fatal("CoreModel: invalid timing configuration");
}

MemSampleRequest
CoreModel::planTick(const TaskDemand &demand, double dt_sec,
                    double core_mhz) const
{
    MemSampleRequest req;
    req.core = id_;
    if (!demand.active || demand.stream == nullptr ||
        demand.memRefsPerInstr <= 0.0) {
        req.samples = 0;
        return req;
    }

    // Estimate this tick's reference count from the previous CPI so the
    // sample size is proportional to the task's real access intensity
    // (that proportionality is what makes shared-L2 contention honest).
    const double avail_cycles = core_mhz * 1e6 * dt_sec * demand.dutyCycle;
    const double est_instr = avail_cycles / std::max(0.25, lastCpi_);
    const double bounded_instr = demand.instrBudget > 0.0
        ? std::min(est_instr, demand.instrBudget) : est_instr;
    const double est_refs = bounded_instr * demand.memRefsPerInstr;

    const double scaled = est_refs * config_.samplingRatio;
    req.stream = demand.stream;
    req.samples = static_cast<uint32_t>(clampToSamples(scaled));
    return req;
}

double
CoreModel::clampToSamples(double scaled) const
{
    return std::clamp(scaled, static_cast<double>(config_.minSamples),
                      static_cast<double>(config_.maxSamples));
}

TickResult
CoreModel::finishTick(const TaskDemand &demand,
                      const MemSampleResult &sample, double dt_sec,
                      double core_mhz, MemSystem &mem)
{
    TickResult out;
    if (!demand.active)
        return out;

    out.cpi = computeCpi(demand.baseCpi, demand.memRefsPerInstr,
                         sample.l1MissRate, sample.l2LocalMissRate,
                         config_.l2HitLatencyNs, mem.dramLatencyNs(),
                         demand.mlp, core_mhz);
    lastCpi_ = out.cpi;

    const double avail_cycles = core_mhz * 1e6 * dt_sec * demand.dutyCycle;
    double instr = avail_cycles / out.cpi;
    double busy_fraction = demand.dutyCycle;
    if (demand.instrBudget > 0.0 && instr > demand.instrBudget) {
        busy_fraction *= demand.instrBudget / instr;
        instr = demand.instrBudget;
    }

    out.instructions = instr;
    out.utilization = busy_fraction;
    out.l1Accesses = instr * demand.memRefsPerInstr;
    out.l2Accesses = out.l1Accesses * sample.l1MissRate;
    out.l2Misses = out.l2Accesses * sample.l2LocalMissRate;
    out.effectiveActivity = demand.activityFactor * busy_fraction;

    mem.commitScaled(id_, out.l1Accesses, sample);

    totalInstructions_ += instr;
    totalBusySeconds_ += busy_fraction * dt_sec;
    return out;
}

void
CoreModel::reset()
{
    lastCpi_ = 1.0;
    totalInstructions_ = 0.0;
    totalBusySeconds_ = 0.0;
}

void
CoreModel::snapshot(SnapshotWriter &w) const
{
    w.beginSection("core", 1);
    w.putU32(id_);
    w.putDouble(lastCpi_);
    w.putDouble(totalInstructions_);
    w.putDouble(totalBusySeconds_);
}

bool
CoreModel::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("core", 1))
        return false;
    uint32_t id;
    double cpi, instructions, busy;
    if (!r.getU32(&id) || id != id_ || !r.getDouble(&cpi) ||
        !r.getDouble(&instructions) || !r.getDouble(&busy))
        return false;
    lastCpi_ = cpi;
    totalInstructions_ = instructions;
    totalBusySeconds_ = busy;
    return true;
}

} // namespace dora
