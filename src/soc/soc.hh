/**
 * @file
 * The SoC assembly: cores + shared memory hierarchy + DVFS actuator.
 *
 * Mirrors the MSM8974 of the paper: four Krait-class cores behind
 * private L1s and a shared 2 MB L2, one frequency/voltage domain for the
 * application cores (the chipset scales all cores together), and a
 * memory bus whose clock is slaved to the core OPP.
 *
 * Frequency switches are not free: each transition stalls the cores for
 * a configurable interval (clock relock + voltage ramp), which is how
 * the paper's Section V-H switching overhead (up to ~3 % of execution
 * time for switch-happy workloads) arises in this reproduction.
 */

#ifndef DORA_SOC_SOC_HH
#define DORA_SOC_SOC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/mem_system.hh"
#include "mem/miss_rate_estimator.hh"
#include "soc/core_model.hh"
#include "soc/freq_table.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** SoC-wide configuration. */
struct SocConfig
{
    uint32_t numCores = 4;
    CoreTimingConfig coreTiming;
    MemSystemConfig mem;
    /**
     * Adaptive memory-sampling reuse (see mem/miss_rate_estimator.hh).
     * Enabled by default; exact-ticks mode (DORA_EXACT_TICKS=1 or
     * setExactTicksMode) overrides it at Soc construction.
     */
    MissRateEstimatorConfig sampling;
    /** Core-stall time charged per frequency transition (seconds). */
    double freqSwitchPenaltySec = 60e-6;
    /** Extra energy per frequency transition (joules; PLL + PMIC). */
    double freqSwitchEnergyJ = 25e-6;
};

/** Aggregated outcome of one SoC tick, consumed by the power model. */
struct SocTickSummary
{
    std::vector<TickResult> perCore;
    double busMhz = 0.0;
    double coreMhz = 0.0;
    double voltage = 0.0;
    double dramEnergyJ = 0.0;     //!< DRAM traffic + background energy
    double switchEnergyJ = 0.0;   //!< DVFS transition energy this tick
    double dramUtilization = 0.0;
};

/** Cumulative counters a governor can sample (perf stand-in). */
struct PerfSnapshot
{
    double seconds = 0.0;            //!< simulated time of the snapshot
    double totalInstructions = 0.0;  //!< all cores
    double totalL2Misses = 0.0;      //!< scaled, all cores
    std::vector<double> coreInstructions;
    std::vector<double> coreBusySeconds;
};

/**
 * Owns the cores, the memory system, and the DVFS state.
 */
class Soc
{
  public:
    Soc(const SocConfig &config, FreqTable freq_table);

    /** Convenience: Nexus 5-like SoC with the MSM8974 table. */
    static Soc nexus5(const SocConfig &config = SocConfig());

    /**
     * Execute one tick for all cores.
     * @param demands one TaskDemand per core (size == numCores)
     * @param dt_sec  tick duration
     */
    SocTickSummary tick(const std::vector<TaskDemand> &demands,
                        double dt_sec);

    /**
     * Allocation-free variant for the per-tick hot path: fills
     * @p summary in place (perCore cleared and refilled). Demand and
     * request scratch space lives in member buffers, so steady-state
     * ticks perform no heap allocation.
     */
    void tick(const std::vector<TaskDemand> &demands, double dt_sec,
              SocTickSummary &summary);

    /**
     * First half of tick(): stall haircut, per-core sample planning,
     * and the adaptive reuse decision. Returns true when this tick
     * needs a hierarchy walk — the caller must then run the walk
     * (tickWalkLocal(), or a fused MemSystem::tickSampleMany() over
     * walkJob() followed by tickWalkStore()) before tickFinish().
     * When false, cached rates were already filled in and tickFinish()
     * may run directly. tick() is exactly tickBegin + [tickWalkLocal]
     * + tickFinish; the split exists so a lane batch can advance many
     * Socs through one fused walk (DESIGN.md §5g). The operating point
     * must not change between the two halves.
     */
    bool tickBegin(const std::vector<TaskDemand> &demands, double dt_sec);

    /** Run this tick's hierarchy walk locally (the unfused path). */
    void tickWalkLocal();

    /**
     * This tick's walk job for MemSystem::tickSampleMany(): the
     * hierarchy plus the request/result scratch planned by tickBegin().
     */
    MemSystem::WalkJob walkJob();

    /** Commit externally computed walk results (after walkJob()). */
    void tickWalkStore();

    /** Second half of tick(): core timing, accounting, DRAM close. */
    void tickFinish(double dt_sec, SocTickSummary &summary);

    /**
     * Request operating point @p idx. Equal-index requests are free;
     * actual transitions charge the switch penalty against the next
     * tick and count toward switchCount().
     */
    void setFrequencyIndex(size_t idx);

    /** Current operating-point index. */
    size_t frequencyIndex() const { return freqIndex_; }

    /** Current operating point. */
    const OperatingPoint &operatingPoint() const;

    /** The DVFS table. */
    const FreqTable &freqTable() const { return freqTable_; }

    /** The memory hierarchy. */
    MemSystem &mem() { return mem_; }
    const MemSystem &mem() const { return mem_; }

    /** Core by index. */
    const CoreModel &core(uint32_t idx) const;

    /** Number of cores. */
    uint32_t numCores() const { return config_.numCores; }

    /** Number of frequency transitions since reset. */
    uint64_t switchCount() const { return switchCount_; }

    /** Total core-stall seconds charged to transitions since reset. */
    double switchStallSeconds() const { return switchStallSeconds_; }

    /** Cumulative counters for governors (cheap to copy). */
    PerfSnapshot perfSnapshot() const;

    /**
     * Drop all cached miss-rate phases: the next tick re-samples. The
     * harness calls this on fault conditioning and thermal emergencies
     * (events that may shift behaviour without moving the phase
     * signature). A no-op in exact-ticks mode.
     */
    void invalidateSampling() { sampling_.invalidate(); }

    /** The adaptive sampling layer (reuse/sample counters, config). */
    const MissRateEstimator &sampling() const { return sampling_; }

    /** Simulated seconds elapsed since reset. */
    double elapsedSeconds() const { return elapsedSeconds_; }

    /** Reset all state (caches, counters, time) for a new run. */
    void reset();

    /**
     * Serialize DVFS state, elapsed time, cores, memory hierarchy, and
     * the sampling estimator. Bound address streams are owned by tasks
     * and snapshotted by their owners, not here.
     */
    void snapshot(SnapshotWriter &w) const;

    /**
     * Restore a snapshot taken from an identically configured SoC;
     * false on section, version, or shape mismatch.
     */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const SocConfig &config() const { return config_; }

  private:
    SocConfig config_;  // dora:snapshot-exclude(construction config)
    // dora:snapshot-exclude(construction table; shape verified on restore)
    FreqTable freqTable_;
    MemSystem mem_;
    MissRateEstimator sampling_;
    std::vector<CoreModel> cores_;
    size_t freqIndex_;
    double pendingSwitchStallSec_ = 0.0;
    double pendingSwitchEnergyJ_ = 0.0;
    uint64_t switchCount_ = 0;
    double switchStallSeconds_ = 0.0;
    double elapsedSeconds_ = 0.0;
    /** Per-tick scratch buffers, reused across ticks. */
    std::vector<TaskDemand> effectiveScratch_;  // dora:snapshot-exclude(scratch)
    std::vector<MemSampleRequest> requestScratch_;  // dora:snapshot-exclude(scratch)
    std::vector<MemSampleResult> resultScratch_;  // dora:snapshot-exclude(scratch)
};

} // namespace dora

#endif // DORA_SOC_SOC_HH
