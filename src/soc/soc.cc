#include "soc/soc.hh"

#include <algorithm>

#include "common/exact_ticks.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

namespace
{

MemSystemConfig
withCoreCount(MemSystemConfig mem, uint32_t cores)
{
    mem.numCores = cores;
    return mem;
}

} // namespace

Soc::Soc(const SocConfig &config, FreqTable freq_table)
    : config_(config), freqTable_(std::move(freq_table)),
      mem_(withCoreCount(config.mem, config.numCores)),
      sampling_(config.sampling, exactTicksMode()),
      freqIndex_(freqTable_.maxIndex())
{
    if (config.numCores == 0)
        fatal("Soc: need at least one core");
    sampling_.setL2Lines(mem_.config().l2.sizeBytes /
                         mem_.config().l2.lineBytes);
    cores_.reserve(config.numCores);
    for (uint32_t c = 0; c < config.numCores; ++c)
        cores_.emplace_back(c, config.coreTiming);
}

Soc
Soc::nexus5(const SocConfig &config)
{
    return Soc(config, FreqTable::msm8974());
}

SocTickSummary
Soc::tick(const std::vector<TaskDemand> &demands, double dt_sec)
{
    SocTickSummary summary;
    tick(demands, dt_sec, summary);
    return summary;
}

void
Soc::tick(const std::vector<TaskDemand> &demands, double dt_sec,
          SocTickSummary &summary)
{
    if (tickBegin(demands, dt_sec))
        tickWalkLocal();
    tickFinish(dt_sec, summary);
}

bool
Soc::tickBegin(const std::vector<TaskDemand> &demands, double dt_sec)
{
    if (demands.size() != cores_.size())
        panic("Soc::tick: %zu demands for %zu cores", demands.size(),
              cores_.size());
    if (dt_sec <= 0.0)
        panic("Soc::tick: non-positive dt");

    const OperatingPoint &opp = freqTable_.opp(freqIndex_);

    // Apply any pending DVFS transition stall as a duty-cycle haircut on
    // this tick (transitions are much shorter than a tick).
    double stall_fraction = 0.0;
    if (pendingSwitchStallSec_ > 0.0) {
        stall_fraction = std::min(1.0, pendingSwitchStallSec_ / dt_sec);
        pendingSwitchStallSec_ = 0.0;
    }

    auto &effective = effectiveScratch_;
    effective.assign(demands.begin(), demands.end());
    if (stall_fraction > 0.0)
        for (auto &demand : effective)
            demand.dutyCycle *= (1.0 - stall_fraction);

    // Phase 1: size each core's address sample.
    auto &requests = requestScratch_;
    requests.clear();
    requests.reserve(cores_.size());
    for (uint32_t c = 0; c < cores_.size(); ++c)
        requests.push_back(
            cores_[c].planTick(effective[c], dt_sec, opp.coreMhz));

    // Phase 2: interleaved shared-hierarchy walk — or, in adaptive
    // mode, reuse of the converged rates cached for this phase
    // signature (stream identities/generations + OPP + interleaving).
    if (sampling_.beginTick(requests, freqIndex_,
                            mem_.config().interleaveChunk))
        return true;
    sampling_.fill(resultScratch_);
    return false;
}

void
Soc::tickWalkLocal()
{
    mem_.tickSample(requestScratch_, resultScratch_);
    sampling_.store(resultScratch_);
}

MemSystem::WalkJob
Soc::walkJob()
{
    return MemSystem::WalkJob{&mem_, &requestScratch_, &resultScratch_,
                              false};
}

void
Soc::tickWalkStore()
{
    sampling_.store(resultScratch_);
}

void
Soc::tickFinish(double dt_sec, SocTickSummary &summary)
{
    const OperatingPoint &opp = freqTable_.opp(freqIndex_);
    const auto &effective = effectiveScratch_;
    const auto &sample_results = resultScratch_;

    // Phase 3: timing + accounting.
    summary.perCore.clear();
    summary.perCore.reserve(cores_.size());
    summary.busMhz = opp.busMhz;
    summary.coreMhz = opp.coreMhz;
    summary.voltage = opp.voltage;
    for (uint32_t c = 0; c < cores_.size(); ++c)
        summary.perCore.push_back(cores_[c].finishTick(
            effective[c], sample_results[c], dt_sec, opp.coreMhz, mem_));

    mem_.endTick(dt_sec, opp.busMhz);
    summary.dramEnergyJ = mem_.dramLastTickEnergyJ();
    summary.dramUtilization = mem_.dramUtilization();
    summary.switchEnergyJ = pendingSwitchEnergyJ_;
    pendingSwitchEnergyJ_ = 0.0;

    elapsedSeconds_ += dt_sec;
}

void
Soc::setFrequencyIndex(size_t idx)
{
    if (idx >= freqTable_.size())
        panic("Soc::setFrequencyIndex: index %zu out of range", idx);
    if (idx == freqIndex_)
        return;
    freqIndex_ = idx;
    ++switchCount_;
    pendingSwitchStallSec_ += config_.freqSwitchPenaltySec;
    pendingSwitchEnergyJ_ += config_.freqSwitchEnergyJ;
    switchStallSeconds_ += config_.freqSwitchPenaltySec;
}

const OperatingPoint &
Soc::operatingPoint() const
{
    return freqTable_.opp(freqIndex_);
}

const CoreModel &
Soc::core(uint32_t idx) const
{
    if (idx >= cores_.size())
        panic("Soc::core: index %u out of range", idx);
    return cores_[idx];
}

PerfSnapshot
Soc::perfSnapshot() const
{
    PerfSnapshot snap;
    snap.seconds = elapsedSeconds_;
    snap.coreInstructions.reserve(cores_.size());
    snap.coreBusySeconds.reserve(cores_.size());
    for (const auto &core : cores_) {
        snap.coreInstructions.push_back(core.totalInstructions());
        snap.coreBusySeconds.push_back(core.totalBusySeconds());
        snap.totalInstructions += core.totalInstructions();
    }
    snap.totalL2Misses = mem_.totalCounters().l2Misses;
    return snap;
}

void
Soc::reset()
{
    mem_.reset();
    sampling_.reset();
    for (auto &core : cores_)
        core.reset();
    freqIndex_ = freqTable_.maxIndex();
    pendingSwitchStallSec_ = 0.0;
    pendingSwitchEnergyJ_ = 0.0;
    switchCount_ = 0;
    switchStallSeconds_ = 0.0;
    elapsedSeconds_ = 0.0;
}

void
Soc::snapshot(SnapshotWriter &w) const
{
    w.beginSection("soc ", 1);
    w.putSize(freqIndex_);
    w.putDouble(pendingSwitchStallSec_);
    w.putDouble(pendingSwitchEnergyJ_);
    w.putU64(switchCount_);
    w.putDouble(switchStallSeconds_);
    w.putDouble(elapsedSeconds_);
    w.putSize(cores_.size());
    for (const auto &core : cores_)
        core.snapshot(w);
    mem_.snapshot(w);
    sampling_.snapshot(w);
}

bool
Soc::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("soc ", 1))
        return false;
    size_t freq_index;
    double pending_stall, pending_energy, switch_stall, elapsed;
    uint64_t switch_count;
    size_t core_count;
    if (!r.getSize(&freq_index) || freq_index >= freqTable_.size() ||
        !r.getDouble(&pending_stall) || !r.getDouble(&pending_energy) ||
        !r.getU64(&switch_count) || !r.getDouble(&switch_stall) ||
        !r.getDouble(&elapsed) || !r.getSize(&core_count) ||
        core_count != cores_.size())
        return false;
    for (auto &core : cores_)
        if (!core.tryRestore(r))
            return false;
    if (!mem_.tryRestore(r) || !sampling_.tryRestore(r))
        return false;
    freqIndex_ = freq_index;
    pendingSwitchStallSec_ = pending_stall;
    pendingSwitchEnergyJ_ = pending_energy;
    switchCount_ = switch_count;
    switchStallSeconds_ = switch_stall;
    elapsedSeconds_ = elapsed;
    return true;
}

} // namespace dora
