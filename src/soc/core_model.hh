/**
 * @file
 * Per-core timing model.
 *
 * Each core executes one task at a time. The timing model is a classic
 * miss-rate-driven CPI decomposition: the task supplies a base CPI (its
 * compute behaviour with a perfect memory hierarchy), a memory reference
 * rate, and a memory-level-parallelism factor; the measured L1/L2 miss
 * rates and the DRAM effective latency convert into stall CPI. Retired
 * instructions per tick follow from available cycles / CPI.
 *
 * The tick protocol is two-phase so the shared L2 sees all cores'
 * samples interleaved (see MemSystem):
 *   1. planTick()  — size this core's address sample for the tick;
 *   2. finishTick() — turn measured miss rates into timing and stats.
 */

#ifndef DORA_SOC_CORE_MODEL_HH
#define DORA_SOC_CORE_MODEL_HH

#include <cstdint>

#include "mem/mem_system.hh"

namespace dora
{

class AddressStream;
class SnapshotReader;
class SnapshotWriter;

/** What a task demands from its core for one tick. */
struct TaskDemand
{
    /** True when the task has work this tick. */
    bool active = false;

    /** CPI with a perfect memory hierarchy (>= some pipeline floor). */
    double baseCpi = 1.0;

    /** L1D references per instruction. */
    double memRefsPerInstr = 0.2;

    /** Average overlapped misses (divides the DRAM stall penalty). */
    double mlp = 1.5;

    /** Fraction of the tick the task wants the core (1 = fully busy). */
    double dutyCycle = 1.0;

    /** Remaining instructions before the task (phase) completes. */
    double instrBudget = 0.0;

    /** Core switching-activity factor in [0,1] for dynamic power. */
    double activityFactor = 0.5;

    /** Address stream for cache sampling (non-owning). */
    AddressStream *stream = nullptr;
};

/** Timing results of one core-tick. */
struct TickResult
{
    double instructions = 0.0;   //!< instructions retired this tick
    double utilization = 0.0;    //!< busy fraction of the tick
    double cpi = 0.0;            //!< effective CPI while busy
    double l1Accesses = 0.0;     //!< scaled L1 references this tick
    double l2Accesses = 0.0;     //!< scaled L2 lookups (L1 misses)
    double l2Misses = 0.0;       //!< scaled L2 misses this tick
    double effectiveActivity = 0.0;  //!< activity x utilization (power)
};

/** Latency parameters of the core pipeline and cache levels. */
struct CoreTimingConfig
{
    double l2HitLatencyNs = 7.0;  //!< L1-miss/L2-hit service time
    double samplingRatio = 1.0 / 256.0;  //!< sampled refs per real ref
    uint32_t minSamples = 32;
    uint32_t maxSamples = 8192;
};

/**
 * One application core. Stateless across ticks except for cumulative
 * counters and the previous tick's CPI (used to size the next sample).
 */
class CoreModel
{
  public:
    CoreModel(uint32_t id, const CoreTimingConfig &config);

    /**
     * Phase 1: produce the sampled-access request for this tick.
     * @param demand  the task's demand (may be inactive)
     * @param dt_sec  tick duration
     * @param core_mhz current core frequency
     */
    MemSampleRequest planTick(const TaskDemand &demand, double dt_sec,
                              double core_mhz) const;

    /**
     * Phase 2: given the measured miss rates, account timing.
     * Also commits scaled traffic into @p mem.
     */
    TickResult finishTick(const TaskDemand &demand,
                          const MemSampleResult &sample, double dt_sec,
                          double core_mhz, MemSystem &mem);

    /** Core id (index into the SoC). */
    uint32_t id() const { return id_; }

    /** Cumulative retired instructions. */
    double totalInstructions() const { return totalInstructions_; }

    /** Cumulative busy time in seconds. */
    double totalBusySeconds() const { return totalBusySeconds_; }

    /** Reset cumulative counters (new run). */
    void reset();

    /** Serialize cumulative counters and the CPI feedback state. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    /** Clamp a scaled sample count into [minSamples, maxSamples]. */
    double clampToSamples(double scaled) const;

    uint32_t id_;
    CoreTimingConfig config_;  // dora:snapshot-exclude(construction config)
    double lastCpi_ = 1.0;
    double totalInstructions_ = 0.0;
    double totalBusySeconds_ = 0.0;
};

/**
 * The CPI decomposition used by CoreModel, exposed for unit testing and
 * for documentation of the timing math.
 *
 * @param base_cpi        pipeline CPI
 * @param refs_per_instr  L1D references per instruction
 * @param l1_miss_rate    misses per L1 reference
 * @param l2_local_miss_rate misses per L2 lookup
 * @param l2_hit_ns       L2 service time for an L1 miss
 * @param dram_ns         effective DRAM latency
 * @param mlp             memory-level parallelism divisor for DRAM time
 * @param core_mhz        core frequency (converts ns to cycles)
 */
double computeCpi(double base_cpi, double refs_per_instr,
                  double l1_miss_rate, double l2_local_miss_rate,
                  double l2_hit_ns, double dram_ns, double mlp,
                  double core_mhz);

} // namespace dora

#endif // DORA_SOC_CORE_MODEL_HH
