#include "soc/freq_table.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dora
{

FreqTable::FreqTable(std::vector<OperatingPoint> opps)
    : opps_(std::move(opps))
{
    if (opps_.empty())
        fatal("FreqTable: empty operating-point list");
    for (size_t i = 1; i < opps_.size(); ++i)
        if (opps_[i].coreMhz <= opps_[i - 1].coreMhz)
            fatal("FreqTable: OPPs must be strictly ascending");
    for (const auto &opp : opps_)
        if (opp.coreMhz <= 0.0 || opp.voltage <= 0.0 || opp.busMhz <= 0.0)
            fatal("FreqTable: non-positive OPP field");
}

FreqTable
FreqTable::msm8974()
{
    // Core frequencies are the stock Nexus 5 cpufreq steps. Voltages
    // follow the Krait 400 PVS-nominal curve (~0.775 V at 300 MHz up to
    // ~1.10 V at 2.27 GHz). Bus frequencies group the OPPs into the four
    // LPDDR3 bus settings, reproducing the paper's piece-wise structure.
    auto bus = [](double core_mhz) {
        if (core_mhz <= 425.0)
            return 200.0;
        if (core_mhz <= 965.0)
            return 333.0;
        if (core_mhz <= 1500.0)
            return 466.0;
        return 800.0;
    };
    const double core_steps[] = {
        300.0, 422.4, 652.8, 729.6, 883.2, 960.0, 1036.8,
        1190.4, 1267.2, 1497.6, 1574.4, 1728.0, 1958.4, 2265.6,
    };
    std::vector<OperatingPoint> opps;
    for (double mhz : core_steps) {
        OperatingPoint opp;
        opp.coreMhz = mhz;
        // Supply curve: near-flat through the mid bins with a sharp
        // rise at the top bins, matching the published Krait 400 PVS
        // tables (the last two OPPs pay a large voltage premium).
        const double x = mhz / 2265.6;
        opp.voltage = 0.79 + 0.08 * x + 0.17 * std::pow(x, 6.0);
        opp.busMhz = bus(mhz);
        opps.push_back(opp);
    }
    return FreqTable(std::move(opps));
}

const OperatingPoint &
FreqTable::opp(size_t idx) const
{
    if (idx >= opps_.size())
        panic("FreqTable::opp: index %zu out of range", idx);
    return opps_[idx];
}

size_t
FreqTable::nearestIndex(double mhz) const
{
    size_t best = 0;
    double best_dist = std::abs(opps_[0].coreMhz - mhz);
    for (size_t i = 1; i < opps_.size(); ++i) {
        const double d = std::abs(opps_[i].coreMhz - mhz);
        if (d < best_dist) {
            best_dist = d;
            best = i;
        }
    }
    return best;
}

std::vector<size_t>
FreqTable::paperSweepIndices() const
{
    // The paper's axes label these 0.7/0.8/0.9/1.2/1.5/1.7/1.9/2.2 GHz;
    // the exact cpufreq steps they correspond to are below.
    const double paper_mhz[] = {729.6,  883.2,  960.0,  1190.4,
                                1497.6, 1728.0, 1958.4, 2265.6};
    std::vector<size_t> indices;
    for (double mhz : paper_mhz) {
        const size_t idx = nearestIndex(mhz);
        if (indices.empty() || indices.back() != idx)
            indices.push_back(idx);
    }
    return indices;
}

std::vector<double>
FreqTable::busFrequencies() const
{
    std::vector<double> buses;
    for (const auto &opp : opps_)
        buses.push_back(opp.busMhz);
    std::sort(buses.begin(), buses.end());
    buses.erase(std::unique(buses.begin(), buses.end()), buses.end());
    return buses;
}

std::vector<size_t>
FreqTable::indicesForBus(double bus_mhz) const
{
    std::vector<size_t> indices;
    for (size_t i = 0; i < opps_.size(); ++i)
        if (opps_[i].busMhz == bus_mhz)
            indices.push_back(i);
    return indices;
}

} // namespace dora
