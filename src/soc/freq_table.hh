/**
 * @file
 * DVFS operating-point table.
 *
 * The modeled chipset is the Qualcomm MSM8974 / Snapdragon 800 of the
 * Google Nexus 5 (paper Table II): 14 frequency settings from 300 MHz to
 * 2265.6 MHz. Each operating point carries the core voltage and the
 * memory-bus frequency it maps to. The paper's observation that "a set
 * of core frequencies map to a particular memory bus frequency" — the
 * reason for its piece-wise models — is reproduced by the bus-frequency
 * grouping here.
 */

#ifndef DORA_SOC_FREQ_TABLE_HH
#define DORA_SOC_FREQ_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dora
{

/** One DVFS operating point. */
struct OperatingPoint
{
    double coreMhz = 0.0;  //!< core clock
    double voltage = 0.0;  //!< core rail voltage (V)
    double busMhz = 0.0;   //!< memory bus clock slaved to this OPP
};

/**
 * Ordered table of operating points (ascending core frequency).
 */
class FreqTable
{
  public:
    /** Build from an explicit OPP list (must be ascending, non-empty). */
    explicit FreqTable(std::vector<OperatingPoint> opps);

    /** The 14-entry MSM8974 (Nexus 5) table used throughout the paper. */
    static FreqTable msm8974();

    /** Number of operating points. */
    size_t size() const { return opps_.size(); }

    /** Operating point by index (0 = slowest). */
    const OperatingPoint &opp(size_t idx) const;

    /** Index of the lowest-frequency OPP. */
    size_t minIndex() const { return 0; }

    /** Index of the highest-frequency OPP. */
    size_t maxIndex() const { return opps_.size() - 1; }

    /** Index of the OPP whose core frequency is closest to @p mhz. */
    size_t nearestIndex(double mhz) const;

    /**
     * Indices of the OPPs closest to the eight frequencies the paper's
     * figures sweep (0.7, 0.8, 0.9, 1.2, 1.5, 1.7, 1.9, 2.2 GHz).
     */
    std::vector<size_t> paperSweepIndices() const;

    /** Distinct bus frequencies, ascending (piece-wise model groups). */
    std::vector<double> busFrequencies() const;

    /** All indices whose OPP maps to @p bus_mhz. */
    std::vector<size_t> indicesForBus(double bus_mhz) const;

  private:
    std::vector<OperatingPoint> opps_;
};

} // namespace dora

#endif // DORA_SOC_FREQ_TABLE_HH
