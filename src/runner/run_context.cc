#include "runner/run_context.hh"

#include <algorithm>

#include "common/exact_ticks.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace dora
{

GovernorDriver::GovernorDriver(Simulator &sim, Governor &governor,
                               double deadline_sec, FaultInjector *fault)
    : sim_(sim), governor_(governor), deadlineSec_(deadline_sec),
      prev_(sim.soc().perfSnapshot()),
      fault_(fault && fault->enabled() ? fault : nullptr),
      baseAmbientC_(sim.power().thermal().ambientC())
{
}

void
GovernorDriver::maybeDecide()
{
    const double now = sim_.nowSec();
    maybeRetryActuator(now);
    if (decided_ && now - lastDecisionSec_ <
            governor_.decisionIntervalSec() - 1e-12)
        return;

    if (fault_)
        applyThermalEmergency(now);

    const PerfSnapshot snap = sim_.soc().perfSnapshot();
    const double dt = snap.seconds - prev_.seconds;

    GovernorView view;
    view.nowSec = now;
    view.freqIndex = sim_.soc().frequencyIndex();
    view.freqTable = &sim_.soc().freqTable();
    view.temperatureC = sim_.power().temperatureC();
    view.page = page_;
    view.deadlineSec = deadlineSec_;
    view.elapsedLoadSec = page_ ? now - loadStartSec_ : 0.0;

    if (dt > 0.0) {
        double max_util = 0.0;
        for (size_t c = 0; c < snap.coreBusySeconds.size(); ++c) {
            const double util =
                (snap.coreBusySeconds[c] - prev_.coreBusySeconds[c]) /
                dt;
            max_util = std::max(max_util, util);
            if (c == kMainCore || c == kHelperCore)
                view.browserUtilization =
                    std::max(view.browserUtilization, util);
            if (c == kCorunCore)
                view.corunUtilization = util;
        }
        view.totalUtilization = max_util;
        const double d_instr =
            snap.totalInstructions - prev_.totalInstructions;
        const double d_miss = snap.totalL2Misses - prev_.totalL2Misses;
        view.l2Mpki = d_instr > 0.0 ? d_miss / (d_instr / 1000.0)
                                    : 0.0;
    }

    bool fault_conditioned = false;
    if (fault_) {
        const FaultCounters before = fault_->counters();
        fault_->conditionView(view);
        const FaultCounters &after = fault_->counters();
        fault_conditioned =
            after.sensorDrops != before.sensorDrops ||
            after.sensorStuckIntervals !=
                before.sensorStuckIntervals ||
            after.sensorNoisy != before.sensorNoisy ||
            after.staleFallbacks != before.staleFallbacks;
        // Conservative: a fault-conditioned decision marks a phase
        // boundary for the adaptive sampler too.
        if (fault_conditioned)
            sim_.soc().invalidateSampling();
    }

    size_t target = governor_.decideFrequencyIndex(view);
    if (target >= view.freqTable->size()) {
        if (!warnedOutOfRange_) {
            warn("GovernorDriver: governor '%s' returned OPP index "
                 "%zu outside the %zu-entry table; clamping",
                 governor_.name().c_str(), target,
                 view.freqTable->size());
            warnedOutOfRange_ = true;
        }
        target = view.freqTable->maxIndex();
    }
    applyFrequency(now, target);
    prev_ = snap;
    lastDecisionSec_ = now;
    decided_ = true;

    DecisionRecord record;
    record.tSec = now;
    // Record the *granted* OPP: with actuator faults the write may
    // have been rejected (identical to the request fault-free).
    record.freqIndex = sim_.soc().frequencyIndex();
    record.requestedFreqIndex = target;
    record.l2Mpki = view.l2Mpki;
    record.corunUtil = view.corunUtilization;
    record.temperatureC = sim_.power().temperatureC();
    decisions_.push_back(record);

    static MetricCounter &decide_count =
        MetricsRegistry::global().counter("governor.decisions");
    decide_count.add();
    if (trace_) {
        trace_->instant(now, "governor", "decide",
                        {{"requested", target},
                         {"granted", record.freqIndex},
                         {"l2_mpki", view.l2Mpki},
                         {"corun_util", view.corunUtilization},
                         {"temp_c", record.temperatureC},
                         {"fault_conditioned", fault_conditioned}});
    }
}

double
GovernorDriver::nextEventSec() const
{
    double next = decided_
        ? lastDecisionSec_ + governor_.decisionIntervalSec()
        : sim_.nowSec();
    if (havePendingWrite_)
        next = std::min(next, nextRetrySec_);
    return next;
}

void
GovernorDriver::applyFrequency(double now, size_t target)
{
    havePendingWrite_ = false;
    if (fault_ == nullptr) {
        sim_.soc().setFrequencyIndex(target);
        return;
    }
    if (fault_->actuatorAccepts(now, target,
                                sim_.soc().frequencyIndex())) {
        sim_.soc().setFrequencyIndex(target);
        return;
    }
    havePendingWrite_ = true;
    pendingTarget_ = target;
    retryAttempts_ = 0;
    retryBackoffSec_ = kActuatorRetryBackoffSec;
    nextRetrySec_ = now + retryBackoffSec_;
}

void
GovernorDriver::maybeRetryActuator(double now)
{
    if (!havePendingWrite_ || fault_ == nullptr ||
        now < nextRetrySec_)
        return;
    fault_->noteActuatorRetry();
    static MetricCounter &retry_count =
        MetricsRegistry::global().counter("governor.actuator_retries");
    retry_count.add();
    if (trace_)
        trace_->instant(now, "governor", "actuator_retry",
                        {{"target", pendingTarget_},
                         {"attempt", retryAttempts_ + 1}});
    if (fault_->actuatorAccepts(now, pendingTarget_,
                                sim_.soc().frequencyIndex())) {
        sim_.soc().setFrequencyIndex(pendingTarget_);
        havePendingWrite_ = false;
        return;
    }
    if (++retryAttempts_ >= kMaxActuatorRetries) {
        // Give up until the next decision; the governor will see
        // the unchanged OPP and re-decide from there.
        fault_->noteActuatorGiveUp();
        static MetricCounter &giveup_count =
            MetricsRegistry::global().counter(
                "governor.actuator_give_ups");
        giveup_count.add();
        if (trace_)
            trace_->instant(now, "governor", "actuator_give_up",
                            {{"target", pendingTarget_}});
        havePendingWrite_ = false;
        return;
    }
    retryBackoffSec_ *= 2.0;
    nextRetrySec_ = now + retryBackoffSec_;
}

void
GovernorDriver::applyThermalEmergency(double now)
{
    const double delta = fault_->ambientDeltaC(now);
    if (delta != appliedAmbientDeltaC_) {
        sim_.power().thermal().setAmbientC(baseAmbientC_ + delta);
        appliedAmbientDeltaC_ = delta;
        // A thermal emergency may shift behaviour without moving
        // the phase signature: drop the cached miss rates so the
        // next tick re-samples (no-op in exact-ticks mode).
        sim_.soc().invalidateSampling();
    }
}

void
GovernorDriver::snapshot(SnapshotWriter &w) const
{
    w.beginSection("gdrv", 1);
    w.putDouble(prev_.seconds);
    w.putDouble(prev_.totalInstructions);
    w.putDouble(prev_.totalL2Misses);
    w.putDoubles(prev_.coreInstructions);
    w.putDoubles(prev_.coreBusySeconds);
    w.putDouble(appliedAmbientDeltaC_);
    w.putBool(havePendingWrite_);
    w.putU64(static_cast<uint64_t>(pendingTarget_));
    w.putU32(static_cast<uint32_t>(retryAttempts_));
    w.putDouble(retryBackoffSec_);
    w.putDouble(nextRetrySec_);
    w.putBool(warnedOutOfRange_);
    w.putDouble(loadStartSec_);
    w.putDouble(lastDecisionSec_);
    w.putBool(decided_);
    w.putSize(decisions_.size());
    for (const auto &d : decisions_) {
        w.putDouble(d.tSec);
        w.putU64(static_cast<uint64_t>(d.freqIndex));
        w.putU64(static_cast<uint64_t>(d.requestedFreqIndex));
        w.putDouble(d.l2Mpki);
        w.putDouble(d.corunUtil);
        w.putDouble(d.temperatureC);
    }
}

bool
GovernorDriver::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("gdrv", 1))
        return false;
    PerfSnapshot prev;
    double ambient_delta, backoff, next_retry, load_start, last_decision;
    bool pending, warned, decided;
    uint64_t pending_target;
    uint32_t attempts;
    size_t n_decisions;
    if (!r.getDouble(&prev.seconds) ||
        !r.getDouble(&prev.totalInstructions) ||
        !r.getDouble(&prev.totalL2Misses) ||
        !r.getDoubles(&prev.coreInstructions) ||
        !r.getDoubles(&prev.coreBusySeconds) ||
        !r.getDouble(&ambient_delta) || !r.getBool(&pending) ||
        !r.getU64(&pending_target) || !r.getU32(&attempts) ||
        !r.getDouble(&backoff) || !r.getDouble(&next_retry) ||
        !r.getBool(&warned) || !r.getDouble(&load_start) ||
        !r.getDouble(&last_decision) || !r.getBool(&decided) ||
        !r.getSize(&n_decisions))
        return false;
    std::vector<DecisionRecord> decisions(n_decisions);
    for (auto &d : decisions) {
        uint64_t freq, requested;
        if (!r.getDouble(&d.tSec) || !r.getU64(&freq) ||
            !r.getU64(&requested) || !r.getDouble(&d.l2Mpki) ||
            !r.getDouble(&d.corunUtil) || !r.getDouble(&d.temperatureC))
            return false;
        d.freqIndex = static_cast<size_t>(freq);
        d.requestedFreqIndex = static_cast<size_t>(requested);
    }
    prev_ = std::move(prev);
    appliedAmbientDeltaC_ = ambient_delta;
    havePendingWrite_ = pending;
    pendingTarget_ = static_cast<size_t>(pending_target);
    retryAttempts_ = static_cast<int>(attempts);
    retryBackoffSec_ = backoff;
    nextRetrySec_ = next_retry;
    warnedOutOfRange_ = warned;
    loadStartSec_ = load_start;
    lastDecisionSec_ = last_decision;
    decided_ = decided;
    decisions_ = std::move(decisions);
    return true;
}

RunContext::RunContext(const ExperimentConfig &config,
                       const Params &params)
    : config_(config), params_(params)
{
    if (params_.governor == nullptr)
        fatal("RunContext: null governor");

    soc_ = std::make_unique<Soc>(config_.soc, deviceFreqTable(config_));
    DevicePowerConfig power_config = config_.power;
    power_config.thermal.ambientC = config_.ambientC;
    power_config.thermal.thermalResistance *=
        config_.thermalResistanceScale;
    // Page loads are short next to the thermal time constant, so the
    // die temperature during a load is dominated by the *starting*
    // temperature. Measurements begin on a warm device (the phone has
    // been in use), i.e. near the steady state of a moderate sustained
    // load — matching the paper's 58-65 degC observations at room
    // ambient (Section V-F).
    power_config.thermal.initialC =
        config_.ambientC + config_.warmDieDeltaC;
    power_ = std::make_unique<DevicePower>(power_config,
                                           LeakageModel::msm8974Truth());

    SimConfig sim_config;
    sim_config.dtSec = config_.dtSec;
    sim_config.maxSeconds =
        config_.warmupSec + config_.maxLoadSec + config_.measureSec + 5.0;
    sim_ = std::make_unique<Simulator>(*soc_, *power_, sim_config);

    // dora:stream-tag-shared(page: namespace shared with the seed)
    salt_ = hashLabel("page:" + params_.label) % 4096;
    if (params_.corun) {
        params_.corun->reset();
        sim_->bindTask(kCorunCore, params_.corun);
    }

    params_.governor->reset();
    if (params_.initialFreq)
        soc_->setFrequencyIndex(*params_.initialFreq);

    if (params_.fault)
        params_.fault->reset();
    driver_ = std::make_unique<GovernorDriver>(
        *sim_, *params_.governor, config_.deadlineSec, params_.fault);

    // One relaxed atomic load per *run* decides whether this run is
    // traced; every per-event site below guards on a plain pointer.
    TraceSession *session = TraceSession::active();
    if (session) {
        std::string key = params_.label + "|" + params_.governor->name();
        if (params_.initialFreq)
            key += "|f" + std::to_string(*params_.initialFreq);
        trace_ = std::make_unique<RunTrace>(std::move(key));
        trace_->setMeta("workload", params_.label);
        trace_->setMeta("governor", params_.governor->name());
        trace_->setMeta("config_hash",
                        hexU64(experimentConfigHash(config_)));
        trace_->setMeta("page_salt", salt_);
        if (params_.initialFreq)
            trace_->setMeta("initial_freq",
                            static_cast<uint64_t>(*params_.initialFreq));
        trace_->setMeta("faults",
                        params_.fault && params_.fault->enabled());
        driver_->setTrace(trace_.get());
        if (params_.fault)
            params_.fault->setTrace(trace_.get());
    }

    exact_ = exactTicksMode();
}

RunContext::~RunContext()
{
    // A run abandoned mid-flight must not leave the shared injector
    // pointing at a dead trace sink.
    if (trace_ && params_.fault)
        params_.fault->setTrace(nullptr);
}

void
RunContext::applyTransitions()
{
    for (;;) {
        if (phase_ == Phase::Warmup &&
            !(sim_->nowSec() < config_.warmupSec)) {
            enterWindow();
            continue;
        }
        if (phase_ == Phase::Window) {
            if (!(sim_->nowSec() - t0_ < windowWall_) ||
                (page_ && page_->finished())) {
                phase_ = Phase::Done;
                continue;
            }
        }
        return;
    }
}

void
RunContext::enterWindow()
{
    if (trace_)
        trace_->complete(0.0, sim_->nowSec(), "run", "warmup");

    // Measurement window begins: bind the page load (if any).
    if (params_.page) {
        page_ = std::make_unique<PageLoad>(*params_.page, cost_, salt_);
        sim_->bindTask(kMainCore, &page_->mainTask());
        sim_->bindTask(kHelperCore, &page_->helperTask());
        driver_->setPage(&params_.page->features, sim_->nowSec());
        if (trace_)
            page_->setTrace(trace_.get(), sim_->nowSec());
    }

    t0_ = sim_->nowSec();
    e0_ = power_->totalEnergyJ();
    p0_ = soc_->perfSnapshot();
    switches0_ = soc_->switchCount();
    corunBusy0_ = soc_->core(kCorunCore).totalBusySeconds();

    tempStat_.reset();
    freqTimeMhz_ = 0.0;
    residency_.assign(soc_->freqTable().size(), 0.0);
    breakdownSum_ = PowerBreakdown();
    windowTicks_ = 0;

    windowWall_ = params_.page ? config_.maxLoadSec : config_.measureSec;
    windowEnd_ = t0_ + windowWall_;
    phase_ = Phase::Window;
}

void
RunContext::accumulate(const TickTrace &trace)
{
    tempStat_.push(power_->temperatureC());
    breakdownSum_.baseline += trace.power.baseline;
    breakdownSum_.coreDynamic += trace.power.coreDynamic;
    breakdownSum_.l2Traffic += trace.power.l2Traffic;
    breakdownSum_.dram += trace.power.dram;
    breakdownSum_.leakage += trace.power.leakage;
    breakdownSum_.dvfsSwitch += trace.power.dvfsSwitch;
    ++windowTicks_;
}

bool
RunContext::done()
{
    applyTransitions();
    return phase_ == Phase::Done;
}

void
RunContext::advance()
{
    applyTransitions();
    if (phase_ == Phase::Done)
        return;
    driver_->maybeDecide();

    if (phase_ == Phase::Warmup) {
        // Warmup: co-runner (if any) alone, governor already in
        // control. Macro-tick fast-forward: between a decision and the
        // driver's next event the ticks are quiescent, so they run as
        // one batch — the per-tick arithmetic is identical
        // (Simulator::fastForward), only the bookkeeping between ticks
        // is elided. --exact-ticks forces the legacy 1-tick loop.
        if (exact_) {
            sim_->step();
            return;
        }
        const double horizon =
            std::min(driver_->nextEventSec(), config_.warmupSec);
        sim_->fastForward(sim_->ticksUntil(horizon));
        return;
    }

    if (exact_) {
        const double mhz = soc_->operatingPoint().coreMhz;
        residency_[soc_->frequencyIndex()] += config_.dtSec;
        const TickTrace &trace = sim_->step();
        freqTimeMhz_ += mhz * config_.dtSec;
        accumulate(trace);
        return;
    }
    // The OPP is constant inside a batch (decisions and retries
    // happen only at batch boundaries), so the residency and
    // MHz-time integrals use values latched here; the page-finish
    // predicate still ends the window on the exact tick.
    const double mhz = soc_->operatingPoint().coreMhz;
    const size_t freq_index = soc_->frequencyIndex();
    const double horizon =
        std::min(driver_->nextEventSec(), windowEnd_);
    sim_->fastForward(
        sim_->ticksUntil(horizon), [&](const TickTrace &trace) {
            residency_[freq_index] += config_.dtSec;
            freqTimeMhz_ += mhz * config_.dtSec;
            accumulate(trace);
            return page_ && page_->finished();
        });
}

RunContext::StepPlan
RunContext::advanceBegin()
{
    if (!exact_)
        panic("RunContext::advanceBegin: exact-ticks mode only");
    applyTransitions();
    if (phase_ == Phase::Done)
        return StepPlan::Finished;
    driver_->maybeDecide();

    stepInWindow_ = phase_ == Phase::Window;
    if (stepInWindow_) {
        stepMhz_ = soc_->operatingPoint().coreMhz;
        residency_[soc_->frequencyIndex()] += config_.dtSec;
    }
    return sim_->stepBegin() ? StepPlan::Walk : StepPlan::NoWalk;
}

void
RunContext::advanceFinish()
{
    const TickTrace &trace = sim_->stepFinish();
    if (stepInWindow_) {
        freqTimeMhz_ += stepMhz_ * config_.dtSec;
        accumulate(trace);
    }
}

RunMeasurement
RunContext::finish()
{
    applyTransitions();

    const double t1 = sim_->nowSec();
    const double window = t1 - t0_;

    RunMeasurement m;
    m.workload = params_.label;
    m.governor = params_.governor->name();
    m.pageFinished = page_ ? page_->finished() : false;
    // An unfinished page is *censored*: the window length below is a
    // lower bound on the load time, so the run must not contribute a
    // PPW score (it would reward failing the page over finishing late).
    m.censored = page_ != nullptr && !m.pageFinished;
    m.loadTimeSec = page_ && page_->finished() ? page_->loadTimeSec()
                                               : window;
    m.meetsDeadline =
        m.pageFinished && m.loadTimeSec <= config_.deadlineSec + 1e-9;
    m.energyJ = power_->totalEnergyJ() - e0_;
    m.meanPowerW = window > 0.0 ? m.energyJ / window : 0.0;
    m.ppw = (!m.censored && m.loadTimeSec > 0.0 && m.meanPowerW > 0.0)
        ? 1.0 / (m.loadTimeSec * m.meanPowerW) : 0.0;

    const PerfSnapshot p1 = soc_->perfSnapshot();
    const double d_instr = p1.totalInstructions - p0_.totalInstructions;
    const double d_miss = p1.totalL2Misses - p0_.totalL2Misses;
    m.meanL2Mpki = d_instr > 0.0 ? d_miss / (d_instr / 1000.0) : 0.0;
    m.meanCorunUtil = window > 0.0
        ? (soc_->core(kCorunCore).totalBusySeconds() - corunBusy0_) /
            window
        : 0.0;
    m.meanTempC = tempStat_.mean();
    m.peakTempC = tempStat_.max();
    m.meanFreqMhz = window > 0.0 ? freqTimeMhz_ / window : 0.0;
    m.freqSwitches = soc_->switchCount() - switches0_;
    m.freqResidencySec = residency_;
    for (const auto &d : driver_->decisions())
        if (d.tSec >= t0_ - 1e-12)
            m.decisions.push_back(d);
    if (windowTicks_ > 0) {
        const double n = static_cast<double>(windowTicks_);
        m.meanBreakdown.baseline = breakdownSum_.baseline / n;
        m.meanBreakdown.coreDynamic = breakdownSum_.coreDynamic / n;
        m.meanBreakdown.l2Traffic = breakdownSum_.l2Traffic / n;
        m.meanBreakdown.dram = breakdownSum_.dram / n;
        m.meanBreakdown.leakage = breakdownSum_.leakage / n;
        m.meanBreakdown.dvfsSwitch = breakdownSum_.dvfsSwitch / n;
    }

    if (reported_)
        return m;
    reported_ = true;

    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("runner.runs").add();
    reg.counter("sim.ticks").add(sim_->tickCount());
    reg.counter("sim.macrotick.batches").add(sim_->macroBatches());
    reg.counter("sim.macrotick.batched_ticks")
        .add(sim_->macroBatchedTicks());
    reg.counter("mem.sample.walks").add(soc_->sampling().sampledTicks());
    reg.counter("mem.sample.reused").add(soc_->sampling().reusedTicks());
    reg.counter("mem.sample.seeded_phases")
        .add(soc_->sampling().seededPhases());
    if (m.censored)
        reg.counter("runner.censored_runs").add();
    if (params_.fault && params_.fault->enabled()) {
        const FaultCounters &fc = params_.fault->counters();
        reg.counter("fault.sensor_drops").add(fc.sensorDrops);
        reg.counter("fault.sensor_stuck_intervals")
            .add(fc.sensorStuckIntervals);
        reg.counter("fault.sensor_noisy").add(fc.sensorNoisy);
        reg.counter("fault.stale_fallbacks").add(fc.staleFallbacks);
        reg.counter("fault.actuator_rejects").add(fc.actuatorRejects);
        reg.counter("fault.thermal_spikes").add(fc.thermalSpikes);
    }

    if (trace_) {
        trace_->complete(t0_, window, "run", "window",
                         {{"ticks", windowTicks_}});
        trace_->instant(t1, "run", "measured",
                        {{"load_time_sec", m.loadTimeSec},
                         {"energy_j", m.energyJ},
                         {"mean_power_w", m.meanPowerW},
                         {"ppw", m.ppw},
                         {"page_finished", m.pageFinished},
                         {"meets_deadline", m.meetsDeadline},
                         {"censored", m.censored},
                         {"mean_freq_mhz", m.meanFreqMhz},
                         {"peak_temp_c", m.peakTempC},
                         {"freq_switches", m.freqSwitches}});
        trace_->setMeta("digest", hexU64(runMeasurementDigest(m)));
        if (params_.fault)
            params_.fault->setTrace(nullptr);
        TraceSession *session = TraceSession::active();
        if (session)
            session->submit(std::move(*trace_));
        trace_.reset();
    }
    return m;
}

void
RunContext::snapshot(SnapshotWriter &w) const
{
    if (trace_)
        panic("RunContext::snapshot: traced runs cannot snapshot "
              "(RunTrace has no snapshot support)");
    if (params_.fault && params_.fault->enabled())
        panic("RunContext::snapshot: fault-injected runs cannot "
              "snapshot (FaultInjector has no snapshot support)");

    w.beginSection("rctx", 1);
    w.putU8(static_cast<uint8_t>(phase_));
    w.putBool(reported_);
    sim_->snapshot(w);
    params_.governor->snapshot(w);
    driver_->snapshot(w);
    w.putBool(params_.corun != nullptr);
    if (params_.corun)
        params_.corun->snapshot(w);
    w.putBool(page_ != nullptr);
    if (page_)
        page_->snapshot(w);

    w.putDouble(t0_);
    w.putDouble(e0_);
    w.putDouble(p0_.seconds);
    w.putDouble(p0_.totalInstructions);
    w.putDouble(p0_.totalL2Misses);
    w.putDoubles(p0_.coreInstructions);
    w.putDoubles(p0_.coreBusySeconds);
    w.putU64(switches0_);
    w.putDouble(corunBusy0_);
    tempStat_.snapshot(w);
    w.putDouble(freqTimeMhz_);
    w.putDoubles(residency_);
    w.putDouble(breakdownSum_.baseline);
    w.putDouble(breakdownSum_.coreDynamic);
    w.putDouble(breakdownSum_.l2Traffic);
    w.putDouble(breakdownSum_.dram);
    w.putDouble(breakdownSum_.leakage);
    w.putDouble(breakdownSum_.dvfsSwitch);
    w.putU64(windowTicks_);
    w.putDouble(windowWall_);
    w.putDouble(windowEnd_);
}

bool
RunContext::tryRestore(SnapshotReader &r)
{
    if (trace_ || (params_.fault && params_.fault->enabled()))
        return false;
    if (!r.beginSection("rctx", 1))
        return false;
    uint8_t phase;
    bool reported;
    if (!r.getU8(&phase) || phase > 2 || !r.getBool(&reported))
        return false;
    // Same-object restore: the page/corun presence flags below must
    // match this context (a pre-window snapshot cannot restore into a
    // context whose page is already bound, and vice versa).
    if (!sim_->tryRestore(r) || !params_.governor->tryRestore(r) ||
        !driver_->tryRestore(r))
        return false;
    bool has_corun, has_page;
    if (!r.getBool(&has_corun) ||
        has_corun != (params_.corun != nullptr))
        return false;
    if (has_corun && !params_.corun->tryRestore(r))
        return false;
    if (!r.getBool(&has_page) || has_page != (page_ != nullptr))
        return false;
    if (has_page && !page_->tryRestore(r))
        return false;

    PerfSnapshot p0;
    double t0, e0, corun_busy0, freq_time_mhz, window_wall, window_end;
    uint64_t switches0, window_ticks;
    RunningStat temp_stat;
    std::vector<double> residency;
    PowerBreakdown breakdown;
    if (!r.getDouble(&t0) || !r.getDouble(&e0) ||
        !r.getDouble(&p0.seconds) ||
        !r.getDouble(&p0.totalInstructions) ||
        !r.getDouble(&p0.totalL2Misses) ||
        !r.getDoubles(&p0.coreInstructions) ||
        !r.getDoubles(&p0.coreBusySeconds) ||
        !r.getU64(&switches0) || !r.getDouble(&corun_busy0) ||
        !temp_stat.tryRestore(r) || !r.getDouble(&freq_time_mhz) ||
        !r.getDoubles(&residency) ||
        !r.getDouble(&breakdown.baseline) ||
        !r.getDouble(&breakdown.coreDynamic) ||
        !r.getDouble(&breakdown.l2Traffic) ||
        !r.getDouble(&breakdown.dram) ||
        !r.getDouble(&breakdown.leakage) ||
        !r.getDouble(&breakdown.dvfsSwitch) ||
        !r.getU64(&window_ticks) || !r.getDouble(&window_wall) ||
        !r.getDouble(&window_end))
        return false;

    phase_ = static_cast<Phase>(phase);
    reported_ = reported;
    t0_ = t0;
    e0_ = e0;
    p0_ = std::move(p0);
    switches0_ = switches0;
    corunBusy0_ = corun_busy0;
    tempStat_ = temp_stat;
    freqTimeMhz_ = freq_time_mhz;
    residency_ = std::move(residency);
    breakdownSum_ = breakdown;
    windowTicks_ = window_ticks;
    windowWall_ = window_wall;
    windowEnd_ = window_end;
    return true;
}

} // namespace dora
