#include "runner/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "browser/page_load.hh"
#include "common/exact_ticks.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/thread_pool.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "stats/running_stat.hh"
#include "workloads/corun_task.hh"

namespace dora
{

namespace
{

/** Core pinning per the paper: browser on 0-1, co-runner on 2, 3 off. */
constexpr uint32_t kMainCore = 0;
constexpr uint32_t kHelperCore = 1;
constexpr uint32_t kCorunCore = 2;

/** Bounded-retry policy for rejected DVFS writes. */
constexpr int kMaxActuatorRetries = 3;
constexpr double kActuatorRetryBackoffSec = 0.005;  //!< doubles per try

/**
 * Drives a governor at its decision interval, computing the windowed
 * signals (utilizations, MPKI) from perf-counter deltas exactly as a
 * userspace daemon would. An optional FaultInjector perturbs the
 * sensor, actuator, and thermal paths; without one (or with an empty
 * schedule) the driver behaves exactly as the fault-free original.
 */
class GovernorDriver
{
  public:
    GovernorDriver(Simulator &sim, Governor &governor, double deadline_sec,
                   FaultInjector *fault = nullptr)
        : sim_(sim), governor_(governor), deadlineSec_(deadline_sec),
          prev_(sim.soc().perfSnapshot()),
          fault_(fault && fault->enabled() ? fault : nullptr),
          baseAmbientC_(sim.power().thermal().ambientC())
    {
    }

    /** Set the page context (null while no page is loading). */
    void setPage(const WebPageFeatures *page, double load_start_sec)
    {
        page_ = page;
        loadStartSec_ = load_start_sec;
    }

    /** Attach a run trace sink (null = tracing disabled). */
    void setTrace(RunTrace *trace) { trace_ = trace; }

    /** Invoke the governor if its interval has elapsed. */
    void maybeDecide()
    {
        const double now = sim_.nowSec();
        maybeRetryActuator(now);
        if (decided_ && now - lastDecisionSec_ <
                governor_.decisionIntervalSec() - 1e-12)
            return;

        if (fault_)
            applyThermalEmergency(now);

        const PerfSnapshot snap = sim_.soc().perfSnapshot();
        const double dt = snap.seconds - prev_.seconds;

        GovernorView view;
        view.nowSec = now;
        view.freqIndex = sim_.soc().frequencyIndex();
        view.freqTable = &sim_.soc().freqTable();
        view.temperatureC = sim_.power().temperatureC();
        view.page = page_;
        view.deadlineSec = deadlineSec_;
        view.elapsedLoadSec = page_ ? now - loadStartSec_ : 0.0;

        if (dt > 0.0) {
            double max_util = 0.0;
            for (size_t c = 0; c < snap.coreBusySeconds.size(); ++c) {
                const double util =
                    (snap.coreBusySeconds[c] - prev_.coreBusySeconds[c]) /
                    dt;
                max_util = std::max(max_util, util);
                if (c == kMainCore || c == kHelperCore)
                    view.browserUtilization =
                        std::max(view.browserUtilization, util);
                if (c == kCorunCore)
                    view.corunUtilization = util;
            }
            view.totalUtilization = max_util;
            const double d_instr =
                snap.totalInstructions - prev_.totalInstructions;
            const double d_miss = snap.totalL2Misses - prev_.totalL2Misses;
            view.l2Mpki = d_instr > 0.0 ? d_miss / (d_instr / 1000.0)
                                        : 0.0;
        }

        bool fault_conditioned = false;
        if (fault_) {
            const FaultCounters before = fault_->counters();
            fault_->conditionView(view);
            const FaultCounters &after = fault_->counters();
            fault_conditioned =
                after.sensorDrops != before.sensorDrops ||
                after.sensorStuckIntervals !=
                    before.sensorStuckIntervals ||
                after.sensorNoisy != before.sensorNoisy ||
                after.staleFallbacks != before.staleFallbacks;
            // Conservative: a fault-conditioned decision marks a phase
            // boundary for the adaptive sampler too.
            if (fault_conditioned)
                sim_.soc().invalidateSampling();
        }

        size_t target = governor_.decideFrequencyIndex(view);
        if (target >= view.freqTable->size()) {
            if (!warnedOutOfRange_) {
                warn("GovernorDriver: governor '%s' returned OPP index "
                     "%zu outside the %zu-entry table; clamping",
                     governor_.name().c_str(), target,
                     view.freqTable->size());
                warnedOutOfRange_ = true;
            }
            target = view.freqTable->maxIndex();
        }
        applyFrequency(now, target);
        prev_ = snap;
        lastDecisionSec_ = now;
        decided_ = true;

        DecisionRecord record;
        record.tSec = now;
        // Record the *granted* OPP: with actuator faults the write may
        // have been rejected (identical to the request fault-free).
        record.freqIndex = sim_.soc().frequencyIndex();
        record.requestedFreqIndex = target;
        record.l2Mpki = view.l2Mpki;
        record.corunUtil = view.corunUtilization;
        record.temperatureC = sim_.power().temperatureC();
        decisions_.push_back(record);

        static MetricCounter &decide_count =
            MetricsRegistry::global().counter("governor.decisions");
        decide_count.add();
        if (trace_) {
            trace_->instant(now, "governor", "decide",
                            {{"requested", target},
                             {"granted", record.freqIndex},
                             {"l2_mpki", view.l2Mpki},
                             {"corun_util", view.corunUtilization},
                             {"temp_c", record.temperatureC},
                             {"fault_conditioned", fault_conditioned}});
        }
    }

    /** All decisions taken so far (warmup included). */
    const std::vector<DecisionRecord> &decisions() const
    {
        return decisions_;
    }

    /**
     * Earliest simulated time at which this driver can act again: the
     * next decision boundary, or a pending actuator retry, whichever
     * comes first. The event horizon for macro-tick batching — between
     * now and this time, maybeDecide() is a guaranteed no-op, so the
     * ticks in between are quiescent and may be batched.
     */
    double nextEventSec() const
    {
        double next = decided_
            ? lastDecisionSec_ + governor_.decisionIntervalSec()
            : sim_.nowSec();
        if (havePendingWrite_)
            next = std::min(next, nextRetrySec_);
        return next;
    }

  private:
    /**
     * Write @p target through the (possibly faulty) DVFS actuator. A
     * rejected write arms a bounded retry with exponential backoff; a
     * fresh decision supersedes any retry still pending.
     */
    void applyFrequency(double now, size_t target)
    {
        havePendingWrite_ = false;
        if (fault_ == nullptr) {
            sim_.soc().setFrequencyIndex(target);
            return;
        }
        if (fault_->actuatorAccepts(now, target,
                                    sim_.soc().frequencyIndex())) {
            sim_.soc().setFrequencyIndex(target);
            return;
        }
        havePendingWrite_ = true;
        pendingTarget_ = target;
        retryAttempts_ = 0;
        retryBackoffSec_ = kActuatorRetryBackoffSec;
        nextRetrySec_ = now + retryBackoffSec_;
    }

    /** Retry a previously rejected DVFS write once its backoff expires. */
    void maybeRetryActuator(double now)
    {
        if (!havePendingWrite_ || fault_ == nullptr ||
            now < nextRetrySec_)
            return;
        fault_->noteActuatorRetry();
        static MetricCounter &retry_count =
            MetricsRegistry::global().counter("governor.actuator_retries");
        retry_count.add();
        if (trace_)
            trace_->instant(now, "governor", "actuator_retry",
                            {{"target", pendingTarget_},
                             {"attempt", retryAttempts_ + 1}});
        if (fault_->actuatorAccepts(now, pendingTarget_,
                                    sim_.soc().frequencyIndex())) {
            sim_.soc().setFrequencyIndex(pendingTarget_);
            havePendingWrite_ = false;
            return;
        }
        if (++retryAttempts_ >= kMaxActuatorRetries) {
            // Give up until the next decision; the governor will see
            // the unchanged OPP and re-decide from there.
            fault_->noteActuatorGiveUp();
            static MetricCounter &giveup_count =
                MetricsRegistry::global().counter(
                    "governor.actuator_give_ups");
            giveup_count.add();
            if (trace_)
                trace_->instant(now, "governor", "actuator_give_up",
                                {{"target", pendingTarget_}});
            havePendingWrite_ = false;
            return;
        }
        retryBackoffSec_ *= 2.0;
        nextRetrySec_ = now + retryBackoffSec_;
    }

    /** Track thermal-emergency windows by shifting the ambient. */
    void applyThermalEmergency(double now)
    {
        const double delta = fault_->ambientDeltaC(now);
        if (delta != appliedAmbientDeltaC_) {
            sim_.power().thermal().setAmbientC(baseAmbientC_ + delta);
            appliedAmbientDeltaC_ = delta;
            // A thermal emergency may shift behaviour without moving
            // the phase signature: drop the cached miss rates so the
            // next tick re-samples (no-op in exact-ticks mode).
            sim_.soc().invalidateSampling();
        }
    }

    Simulator &sim_;
    Governor &governor_;
    double deadlineSec_;
    PerfSnapshot prev_;
    FaultInjector *fault_;          //!< null when fault-free
    double baseAmbientC_;
    double appliedAmbientDeltaC_ = 0.0;
    bool havePendingWrite_ = false;
    size_t pendingTarget_ = 0;
    int retryAttempts_ = 0;
    double retryBackoffSec_ = 0.0;
    double nextRetrySec_ = 0.0;
    bool warnedOutOfRange_ = false;
    const WebPageFeatures *page_ = nullptr;
    double loadStartSec_ = 0.0;
    double lastDecisionSec_ = 0.0;
    bool decided_ = false;
    RunTrace *trace_ = nullptr;  //!< null when tracing is disabled
    std::vector<DecisionRecord> decisions_;
};

} // namespace

ExperimentRunner::ExperimentRunner(const ExperimentConfig &config)
    : config_(config), freqTable_(FreqTable::msm8974())
{
}

RunMeasurement
ExperimentRunner::run(const WorkloadSpec &workload, Governor &governor,
                      std::optional<size_t> initial_freq)
{
    std::unique_ptr<CorunTask> corun;
    if (workload.kernel) {
        // The "corun:" stream tag decorrelates this salt from the
        // PageLoad salt in runCustom() ("page:" + the same label):
        // with a shared salt the browser and the co-runner drew
        // correlated address/phase streams.
        const uint64_t salt =
            hashLabel("corun:" + workload.label()) % 4096;
        corun = std::make_unique<CorunTask>(*workload.kernel, salt);
    }
    return runCustom(workload.page, corun.get(), workload.label(),
                     governor, initial_freq);
}

RunMeasurement
ExperimentRunner::runCustom(const WebPage *page_ptr, Task *corun_task,
                            const std::string &label, Governor &governor,
                            std::optional<size_t> initial_freq)
{
    Soc soc = Soc::nexus5(config_.soc);
    DevicePowerConfig power_config = config_.power;
    power_config.thermal.ambientC = config_.ambientC;
    // Page loads are short next to the thermal time constant, so the
    // die temperature during a load is dominated by the *starting*
    // temperature. Measurements begin on a warm device (the phone has
    // been in use), i.e. near the steady state of a moderate sustained
    // load — matching the paper's 58-65 degC observations at room
    // ambient (Section V-F).
    power_config.thermal.initialC =
        config_.ambientC + config_.warmDieDeltaC;
    DevicePower power(power_config, LeakageModel::msm8974Truth());

    SimConfig sim_config;
    sim_config.dtSec = config_.dtSec;
    sim_config.maxSeconds =
        config_.warmupSec + config_.maxLoadSec + config_.measureSec + 5.0;
    Simulator sim(soc, power, sim_config);

    const uint64_t salt = hashLabel("page:" + label) % 4096;
    if (corun_task) {
        corun_task->reset();
        sim.bindTask(kCorunCore, corun_task);
    }

    governor.reset();
    if (initial_freq)
        soc.setFrequencyIndex(*initial_freq);

    if (faultInjector_)
        faultInjector_->reset();
    GovernorDriver driver(sim, governor, config_.deadlineSec,
                          faultInjector_);

    // One relaxed atomic load per *run* decides whether this run is
    // traced; every per-event site below guards on a plain pointer.
    TraceSession *session = TraceSession::active();
    std::unique_ptr<RunTrace> trace;
    if (session) {
        std::string key = label + "|" + governor.name();
        if (initial_freq)
            key += "|f" + std::to_string(*initial_freq);
        trace = std::make_unique<RunTrace>(std::move(key));
        trace->setMeta("workload", label);
        trace->setMeta("governor", governor.name());
        trace->setMeta("config_hash",
                       hexU64(experimentConfigHash(config_)));
        trace->setMeta("page_salt", salt);
        if (initial_freq)
            trace->setMeta("initial_freq",
                           static_cast<uint64_t>(*initial_freq));
        trace->setMeta("faults",
                       faultInjector_ && faultInjector_->enabled());
        driver.setTrace(trace.get());
        if (faultInjector_)
            faultInjector_->setTrace(trace.get());
    }

    // Warmup: co-runner (if any) alone, governor already in control.
    // Macro-tick fast-forward: between a decision and the driver's next
    // event the ticks are quiescent, so they run as one batch — the
    // per-tick arithmetic is identical (Simulator::fastForward), only
    // the bookkeeping between ticks is elided. --exact-ticks forces the
    // legacy 1-tick loop.
    const bool exact = exactTicksMode();
    while (sim.nowSec() < config_.warmupSec) {
        driver.maybeDecide();
        if (exact) {
            sim.step();
            continue;
        }
        const double horizon =
            std::min(driver.nextEventSec(), config_.warmupSec);
        sim.fastForward(sim.ticksUntil(horizon));
    }
    if (trace)
        trace->complete(0.0, sim.nowSec(), "run", "warmup");

    // Measurement window begins: bind the page load (if any).
    std::unique_ptr<PageLoad> page;
    RenderCostModel cost;
    if (page_ptr) {
        page = std::make_unique<PageLoad>(*page_ptr, cost, salt);
        sim.bindTask(kMainCore, &page->mainTask());
        sim.bindTask(kHelperCore, &page->helperTask());
        driver.setPage(&page_ptr->features, sim.nowSec());
        if (trace)
            page->setTrace(trace.get(), sim.nowSec());
    }

    const double t0 = sim.nowSec();
    const double e0 = power.totalEnergyJ();
    const PerfSnapshot p0 = soc.perfSnapshot();
    const uint64_t switches0 = soc.switchCount();
    const double corun_busy0 =
        soc.core(kCorunCore).totalBusySeconds();

    RunningStat temp_stat;
    double freq_time_mhz = 0.0;  // integral of core MHz over the window
    std::vector<double> residency(soc.freqTable().size(), 0.0);
    PowerBreakdown breakdown_sum;
    uint64_t window_ticks = 0;

    const double window_wall =
        page_ptr ? config_.maxLoadSec : config_.measureSec;
    const double window_end = t0 + window_wall;
    const auto accumulate = [&](const TickTrace &trace) {
        temp_stat.push(power.temperatureC());
        breakdown_sum.baseline += trace.power.baseline;
        breakdown_sum.coreDynamic += trace.power.coreDynamic;
        breakdown_sum.l2Traffic += trace.power.l2Traffic;
        breakdown_sum.dram += trace.power.dram;
        breakdown_sum.leakage += trace.power.leakage;
        breakdown_sum.dvfsSwitch += trace.power.dvfsSwitch;
        ++window_ticks;
    };
    while (sim.nowSec() - t0 < window_wall) {
        if (page && page->finished())
            break;
        driver.maybeDecide();
        if (exact) {
            const double mhz = soc.operatingPoint().coreMhz;
            residency[soc.frequencyIndex()] += config_.dtSec;
            const TickTrace &trace = sim.step();
            freq_time_mhz += mhz * config_.dtSec;
            accumulate(trace);
            continue;
        }
        // The OPP is constant inside a batch (decisions and retries
        // happen only at batch boundaries), so the residency and
        // MHz-time integrals use values latched here; the page-finish
        // predicate still ends the window on the exact tick.
        const double mhz = soc.operatingPoint().coreMhz;
        const size_t freq_index = soc.frequencyIndex();
        const double horizon =
            std::min(driver.nextEventSec(), window_end);
        sim.fastForward(
            sim.ticksUntil(horizon), [&](const TickTrace &trace) {
                residency[freq_index] += config_.dtSec;
                freq_time_mhz += mhz * config_.dtSec;
                accumulate(trace);
                return page && page->finished();
            });
    }

    const double t1 = sim.nowSec();
    const double window = t1 - t0;

    RunMeasurement m;
    m.workload = label;
    m.governor = governor.name();
    m.pageFinished = page ? page->finished() : false;
    // An unfinished page is *censored*: the window length below is a
    // lower bound on the load time, so the run must not contribute a
    // PPW score (it would reward failing the page over finishing late).
    m.censored = page != nullptr && !m.pageFinished;
    m.loadTimeSec = page && page->finished() ? page->loadTimeSec()
                                             : window;
    m.meetsDeadline =
        m.pageFinished && m.loadTimeSec <= config_.deadlineSec + 1e-9;
    m.energyJ = power.totalEnergyJ() - e0;
    m.meanPowerW = window > 0.0 ? m.energyJ / window : 0.0;
    m.ppw = (!m.censored && m.loadTimeSec > 0.0 && m.meanPowerW > 0.0)
        ? 1.0 / (m.loadTimeSec * m.meanPowerW) : 0.0;

    const PerfSnapshot p1 = soc.perfSnapshot();
    const double d_instr = p1.totalInstructions - p0.totalInstructions;
    const double d_miss = p1.totalL2Misses - p0.totalL2Misses;
    m.meanL2Mpki = d_instr > 0.0 ? d_miss / (d_instr / 1000.0) : 0.0;
    m.meanCorunUtil = window > 0.0
        ? (soc.core(kCorunCore).totalBusySeconds() - corun_busy0) / window
        : 0.0;
    m.meanTempC = temp_stat.mean();
    m.peakTempC = temp_stat.max();
    m.meanFreqMhz = window > 0.0 ? freq_time_mhz / window : 0.0;
    m.freqSwitches = soc.switchCount() - switches0;
    m.freqResidencySec = std::move(residency);
    for (const auto &d : driver.decisions())
        if (d.tSec >= t0 - 1e-12)
            m.decisions.push_back(d);
    if (window_ticks > 0) {
        const double n = static_cast<double>(window_ticks);
        m.meanBreakdown.baseline = breakdown_sum.baseline / n;
        m.meanBreakdown.coreDynamic = breakdown_sum.coreDynamic / n;
        m.meanBreakdown.l2Traffic = breakdown_sum.l2Traffic / n;
        m.meanBreakdown.dram = breakdown_sum.dram / n;
        m.meanBreakdown.leakage = breakdown_sum.leakage / n;
        m.meanBreakdown.dvfsSwitch = breakdown_sum.dvfsSwitch / n;
    }

    MetricsRegistry &reg = MetricsRegistry::global();
    reg.counter("runner.runs").add();
    reg.counter("sim.ticks").add(sim.tickCount());
    reg.counter("sim.macrotick.batches").add(sim.macroBatches());
    reg.counter("sim.macrotick.batched_ticks")
        .add(sim.macroBatchedTicks());
    reg.counter("mem.sample.walks").add(soc.sampling().sampledTicks());
    reg.counter("mem.sample.reused").add(soc.sampling().reusedTicks());
    if (m.censored)
        reg.counter("runner.censored_runs").add();
    if (faultInjector_ && faultInjector_->enabled()) {
        const FaultCounters &fc = faultInjector_->counters();
        reg.counter("fault.sensor_drops").add(fc.sensorDrops);
        reg.counter("fault.sensor_stuck_intervals")
            .add(fc.sensorStuckIntervals);
        reg.counter("fault.sensor_noisy").add(fc.sensorNoisy);
        reg.counter("fault.stale_fallbacks").add(fc.staleFallbacks);
        reg.counter("fault.actuator_rejects").add(fc.actuatorRejects);
        reg.counter("fault.thermal_spikes").add(fc.thermalSpikes);
    }

    if (trace) {
        trace->complete(t0, window, "run", "window",
                        {{"ticks", window_ticks}});
        trace->instant(t1, "run", "measured",
                       {{"load_time_sec", m.loadTimeSec},
                        {"energy_j", m.energyJ},
                        {"mean_power_w", m.meanPowerW},
                        {"ppw", m.ppw},
                        {"page_finished", m.pageFinished},
                        {"meets_deadline", m.meetsDeadline},
                        {"censored", m.censored},
                        {"mean_freq_mhz", m.meanFreqMhz},
                        {"peak_temp_c", m.peakTempC},
                        {"freq_switches", m.freqSwitches}});
        trace->setMeta("digest", hexU64(runMeasurementDigest(m)));
        if (faultInjector_)
            faultInjector_->setTrace(nullptr);
        session->submit(std::move(*trace));
    }
    return m;
}

RunMeasurement
ExperimentRunner::runAtFrequency(const WorkloadSpec &workload,
                                 size_t freq_index)
{
    FixedGovernor governor(freq_index);
    return run(workload, governor, freq_index);
}

double
ExperimentRunner::socCollapsedFloorW() const
{
    return config_.power.baselineW +
        config_.power.dynamic.idleActivity * 0.0 +  // cores gated
        config_.soc.mem.dram.backgroundPowerW;
}

std::vector<IdleSample>
ExperimentRunner::idleCharacterization(
    const std::vector<double> &ambients_c, double settle_sec,
    double sample_sec, unsigned jobs)
{
    // One cell per (ambient, OPP): a fully independent device
    // simulation, so the grid parallelizes with no shared state. Cells
    // are assembled in grid order, which keeps the sample sequence
    // identical at every job count.
    const size_t freqs = freqTable_.size();
    auto run_cell = [&](size_t cell) {
        const double ambient = ambients_c[cell / freqs];
        const size_t f = cell % freqs;

        Soc soc = Soc::nexus5(config_.soc);
        DevicePowerConfig power_config = config_.power;
        power_config.thermal.ambientC = ambient;
        power_config.thermal.initialC = ambient;
        DevicePower power(power_config, LeakageModel::msm8974Truth());
        SimConfig sim_config;
        sim_config.dtSec = config_.dtSec;
        sim_config.maxSeconds = settle_sec + sample_sec + 1.0;
        Simulator sim(soc, power, sim_config);
        soc.setFrequencyIndex(f);

        while (sim.nowSec() < settle_sec)
            sim.step();
        // Sample (v, T, P) tuples along the tail of the transient:
        // each pair is a valid instantaneous observation for the
        // leakage fit, and the spread in T conditions the problem.
        std::vector<IdleSample> cell_samples;
        RunningStat power_stat;
        double last_emit = sim.nowSec();
        IdleSample s;
        s.voltage = soc.operatingPoint().voltage;
        while (sim.nowSec() < settle_sec + sample_sec) {
            const TickTrace &trace = sim.step();
            power_stat.push(trace.power.total());
            if (sim.nowSec() - last_emit >= 0.1) {
                s.tempC = power.temperatureC();
                s.powerW = power_stat.mean();
                cell_samples.push_back(s);
                power_stat.reset();
                last_emit = sim.nowSec();
            }
        }
        return cell_samples;
    };

    const size_t cells = ambients_c.size() * freqs;
    std::vector<IdleSample> samples;
    if (jobs == 1) {
        for (size_t cell = 0; cell < cells; ++cell) {
            const auto cell_samples = run_cell(cell);
            samples.insert(samples.end(), cell_samples.begin(),
                           cell_samples.end());
        }
        return samples;
    }
    const auto per_cell = parallelMap<std::vector<IdleSample>>(
        cells, run_cell, jobs);
    for (const auto &cell_samples : per_cell)
        samples.insert(samples.end(), cell_samples.begin(),
                       cell_samples.end());
    return samples;
}

namespace
{

/** Append @p value to @p out as a bit-exact hex float. */
void
appendHexDouble(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a ", value);
    out += buf;
}

} // namespace

std::string
runMeasurementText(const RunMeasurement &m)
{
    std::string out;
    out.reserve(512);
    out += m.workload;
    out += '|';
    out += m.governor;
    out += '|';
    out += m.pageFinished ? '1' : '0';
    out += m.meetsDeadline ? '1' : '0';
    out += m.censored ? '1' : '0';
    out += ' ';
    appendHexDouble(out, m.loadTimeSec);
    appendHexDouble(out, m.energyJ);
    appendHexDouble(out, m.meanPowerW);
    appendHexDouble(out, m.ppw);
    appendHexDouble(out, m.meanL2Mpki);
    appendHexDouble(out, m.meanCorunUtil);
    appendHexDouble(out, m.meanTempC);
    appendHexDouble(out, m.peakTempC);
    appendHexDouble(out, m.meanFreqMhz);
    out += "sw=" + std::to_string(m.freqSwitches) + " res=";
    for (double r : m.freqResidencySec)
        appendHexDouble(out, r);
    out += "dec=";
    for (const auto &d : m.decisions) {
        appendHexDouble(out, d.tSec);
        out += std::to_string(d.freqIndex) + "/" +
            std::to_string(d.requestedFreqIndex) + " ";
        appendHexDouble(out, d.l2Mpki);
        appendHexDouble(out, d.corunUtil);
        appendHexDouble(out, d.temperatureC);
    }
    out += "bk=";
    appendHexDouble(out, m.meanBreakdown.baseline);
    appendHexDouble(out, m.meanBreakdown.coreDynamic);
    appendHexDouble(out, m.meanBreakdown.l2Traffic);
    appendHexDouble(out, m.meanBreakdown.dram);
    appendHexDouble(out, m.meanBreakdown.leakage);
    appendHexDouble(out, m.meanBreakdown.dvfsSwitch);
    return out;
}

uint64_t
runMeasurementDigest(const RunMeasurement &m)
{
    return hashLabel(runMeasurementText(m));
}

uint64_t
experimentConfigHash(const ExperimentConfig &config)
{
    // "rev3": adaptive memory-sampling reuse. Bump the token whenever
    // the run recipe changes results. The sampling tunables shape
    // adaptive-mode results, so they are part of the protocol;
    // exact-ticks mode (or sampling.enabled = false) keys separately.
    std::string text = "measurement-rev3 ";
    appendHexDouble(text, config.deadlineSec);
    appendHexDouble(text, config.warmupSec);
    appendHexDouble(text, config.dtSec);
    appendHexDouble(text, config.maxLoadSec);
    appendHexDouble(text, config.measureSec);
    appendHexDouble(text, config.ambientC);
    appendHexDouble(text, config.warmDieDeltaC);
    const bool adaptive =
        config.soc.sampling.enabled && !exactTicksMode();
    if (adaptive) {
        text += "adaptive r" +
            std::to_string(config.soc.sampling.refreshTicks) + " c" +
            std::to_string(config.soc.sampling.convergeTicks) + " e" +
            std::to_string(config.soc.sampling.maxEntries) + " w";
        appendHexDouble(text, config.soc.sampling.warmCoverage);
    } else {
        text += "exact";
    }
    return hashLabel(text);
}

} // namespace dora
