#include "runner/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/exact_ticks.hh"
#include "common/rng.hh"
#include "exec/thread_pool.hh"
#include "runner/run_context.hh"
#include "workloads/corun_task.hh"

namespace dora
{

FreqTable
deviceFreqTable(const ExperimentConfig &config)
{
    if (config.freqScale == 1.0 && config.voltageScale == 1.0)
        return FreqTable::msm8974();
    const FreqTable stock = FreqTable::msm8974();
    std::vector<OperatingPoint> opps;
    opps.reserve(stock.size());
    for (size_t i = 0; i < stock.size(); ++i) {
        OperatingPoint opp = stock.opp(i);
        // Positive scales preserve the ascending-frequency invariant
        // the FreqTable constructor enforces.
        opp.coreMhz *= config.freqScale;
        opp.busMhz *= config.freqScale;
        opp.voltage *= config.voltageScale;
        opps.push_back(opp);
    }
    return FreqTable(std::move(opps));
}

ExperimentRunner::ExperimentRunner(const ExperimentConfig &config)
    : config_(config), freqTable_(deviceFreqTable(config))
{
}

RunMeasurement
ExperimentRunner::run(const WorkloadSpec &workload, Governor &governor,
                      std::optional<size_t> initial_freq)
{
    std::unique_ptr<CorunTask> corun;
    if (workload.kernel) {
        // The "corun:" stream tag decorrelates this salt from the
        // PageLoad salt in runCustom() ("page:" + the same label):
        // with a shared salt the browser and the co-runner drew
        // correlated address/phase streams.
        const uint64_t salt =
            // dora:stream-tag-shared(same workload, same corun stream)
            hashLabel("corun:" + workload.label()) % 4096;
        corun = std::make_unique<CorunTask>(*workload.kernel, salt);
    }
    return runCustom(workload.page, corun.get(), workload.label(),
                     governor, initial_freq);
}

RunMeasurement
ExperimentRunner::runCustom(const WebPage *page_ptr, Task *corun_task,
                            const std::string &label, Governor &governor,
                            std::optional<size_t> initial_freq)
{
    RunContext::Params params;
    params.page = page_ptr;
    params.corun = corun_task;
    params.label = label;
    params.governor = &governor;
    params.initialFreq = initial_freq;
    params.fault = faultInjector_;
    RunContext ctx(config_, params);
    while (!ctx.done())
        ctx.advance();
    return ctx.finish();
}

RunMeasurement
ExperimentRunner::runAtFrequency(const WorkloadSpec &workload,
                                 size_t freq_index)
{
    FixedGovernor governor(freq_index);
    return run(workload, governor, freq_index);
}

double
ExperimentRunner::socCollapsedFloorW() const
{
    return config_.power.baselineW +
        config_.power.dynamic.idleActivity * 0.0 +  // cores gated
        config_.soc.mem.dram.backgroundPowerW;
}

std::vector<IdleSample>
ExperimentRunner::idleCharacterization(
    const std::vector<double> &ambients_c, double settle_sec,
    double sample_sec, unsigned jobs)
{
    // One cell per (ambient, OPP): a fully independent device
    // simulation, so the grid parallelizes with no shared state. Cells
    // are assembled in grid order, which keeps the sample sequence
    // identical at every job count.
    const size_t freqs = freqTable_.size();
    auto run_cell = [&](size_t cell) {
        const double ambient = ambients_c[cell / freqs];
        const size_t f = cell % freqs;

        Soc soc(config_.soc, deviceFreqTable(config_));
        DevicePowerConfig power_config = config_.power;
        power_config.thermal.ambientC = ambient;
        power_config.thermal.initialC = ambient;
        power_config.thermal.thermalResistance *=
            config_.thermalResistanceScale;
        DevicePower power(power_config, LeakageModel::msm8974Truth());
        SimConfig sim_config;
        sim_config.dtSec = config_.dtSec;
        sim_config.maxSeconds = settle_sec + sample_sec + 1.0;
        Simulator sim(soc, power, sim_config);
        soc.setFrequencyIndex(f);

        while (sim.nowSec() < settle_sec)
            sim.step();
        // Sample (v, T, P) tuples along the tail of the transient:
        // each pair is a valid instantaneous observation for the
        // leakage fit, and the spread in T conditions the problem.
        std::vector<IdleSample> cell_samples;
        RunningStat power_stat;
        double last_emit = sim.nowSec();
        IdleSample s;
        s.voltage = soc.operatingPoint().voltage;
        while (sim.nowSec() < settle_sec + sample_sec) {
            const TickTrace &trace = sim.step();
            power_stat.push(trace.power.total());
            if (sim.nowSec() - last_emit >= 0.1) {
                s.tempC = power.temperatureC();
                s.powerW = power_stat.mean();
                cell_samples.push_back(s);
                power_stat.reset();
                last_emit = sim.nowSec();
            }
        }
        return cell_samples;
    };

    const size_t cells = ambients_c.size() * freqs;
    std::vector<IdleSample> samples;
    if (jobs == 1) {
        for (size_t cell = 0; cell < cells; ++cell) {
            const auto cell_samples = run_cell(cell);
            samples.insert(samples.end(), cell_samples.begin(),
                           cell_samples.end());
        }
        return samples;
    }
    const auto per_cell = parallelMap<std::vector<IdleSample>>(
        cells, run_cell, jobs);
    for (const auto &cell_samples : per_cell)
        samples.insert(samples.end(), cell_samples.begin(),
                       cell_samples.end());
    return samples;
}

namespace
{

/** Append @p value to @p out as a bit-exact hex float. */
void
appendHexDouble(std::string &out, double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a ", value);
    out += buf;
}

} // namespace

std::string
runMeasurementText(const RunMeasurement &m)
{
    std::string out;
    out.reserve(512);
    out += m.workload;
    out += '|';
    out += m.governor;
    out += '|';
    out += m.pageFinished ? '1' : '0';
    out += m.meetsDeadline ? '1' : '0';
    out += m.censored ? '1' : '0';
    out += ' ';
    appendHexDouble(out, m.loadTimeSec);
    appendHexDouble(out, m.energyJ);
    appendHexDouble(out, m.meanPowerW);
    appendHexDouble(out, m.ppw);
    appendHexDouble(out, m.meanL2Mpki);
    appendHexDouble(out, m.meanCorunUtil);
    appendHexDouble(out, m.meanTempC);
    appendHexDouble(out, m.peakTempC);
    appendHexDouble(out, m.meanFreqMhz);
    out += "sw=" + std::to_string(m.freqSwitches) + " res=";
    for (double r : m.freqResidencySec)
        appendHexDouble(out, r);
    out += "dec=";
    for (const auto &d : m.decisions) {
        appendHexDouble(out, d.tSec);
        out += std::to_string(d.freqIndex) + "/" +
            std::to_string(d.requestedFreqIndex) + " ";
        appendHexDouble(out, d.l2Mpki);
        appendHexDouble(out, d.corunUtil);
        appendHexDouble(out, d.temperatureC);
    }
    out += "bk=";
    appendHexDouble(out, m.meanBreakdown.baseline);
    appendHexDouble(out, m.meanBreakdown.coreDynamic);
    appendHexDouble(out, m.meanBreakdown.l2Traffic);
    appendHexDouble(out, m.meanBreakdown.dram);
    appendHexDouble(out, m.meanBreakdown.leakage);
    appendHexDouble(out, m.meanBreakdown.dvfsSwitch);
    return out;
}

uint64_t
runMeasurementDigest(const RunMeasurement &m)
{
    return hashLabel(runMeasurementText(m));
}

uint64_t
experimentConfigHash(const ExperimentConfig &config)
{
    // "rev3": adaptive memory-sampling reuse. Bump the token whenever
    // the run recipe changes results. The sampling tunables shape
    // adaptive-mode results, so they are part of the protocol;
    // exact-ticks mode (or sampling.enabled = false) keys separately.
    std::string text = "measurement-rev3 ";
    appendHexDouble(text, config.deadlineSec);
    appendHexDouble(text, config.warmupSec);
    appendHexDouble(text, config.dtSec);
    appendHexDouble(text, config.maxLoadSec);
    appendHexDouble(text, config.measureSec);
    appendHexDouble(text, config.ambientC);
    appendHexDouble(text, config.warmDieDeltaC);
    const bool adaptive =
        config.soc.sampling.enabled && !exactTicksMode();
    if (adaptive) {
        text += "adaptive r" +
            std::to_string(config.soc.sampling.refreshTicks) + " c" +
            std::to_string(config.soc.sampling.convergeTicks) + " e" +
            std::to_string(config.soc.sampling.maxEntries) + " w";
        appendHexDouble(text, config.soc.sampling.warmCoverage);
    } else {
        text += "exact";
    }
    // Heterogeneity scales key only when non-default so that every
    // pre-fleet campaign hash and cached bundle stays valid.
    if (config.freqScale != 1.0 || config.voltageScale != 1.0 ||
        config.thermalResistanceScale != 1.0) {
        text += " hetero";
        appendHexDouble(text, config.freqScale);
        appendHexDouble(text, config.voltageScale);
        appendHexDouble(text, config.thermalResistanceScale);
    }
    // The power model keys only when it departs from the stock
    // Nexus 5 parameters, again so pre-existing hashes stay valid.
    // thermal.ambientC and thermal.initialC are overwritten per run
    // from ambientC / warmDieDeltaC (folded above) and are therefore
    // not part of the protocol.
    const DevicePowerConfig stock_power;
    const bool stock_dynamic =
        config.power.dynamic.coreCeff ==
            stock_power.dynamic.coreCeff &&
        config.power.dynamic.idleActivity ==
            stock_power.dynamic.idleActivity &&
        config.power.dynamic.l2AccessEnergyJ ==
            stock_power.dynamic.l2AccessEnergyJ &&
        config.power.dynamic.uncoreCeff ==
            stock_power.dynamic.uncoreCeff;
    const bool stock_thermal =
        config.power.thermal.thermalResistance ==
            stock_power.thermal.thermalResistance &&
        config.power.thermal.heatCapacity ==
            stock_power.thermal.heatCapacity &&
        config.power.thermal.maxJunctionC ==
            stock_power.thermal.maxJunctionC;
    if (!stock_dynamic || !stock_thermal ||
        config.power.baselineW != stock_power.baselineW) {
        text += " power";
        appendHexDouble(text, config.power.dynamic.coreCeff);
        appendHexDouble(text, config.power.dynamic.idleActivity);
        appendHexDouble(text, config.power.dynamic.l2AccessEnergyJ);
        appendHexDouble(text, config.power.dynamic.uncoreCeff);
        appendHexDouble(text, config.power.thermal.thermalResistance);
        appendHexDouble(text, config.power.thermal.heatCapacity);
        appendHexDouble(text, config.power.thermal.maxJunctionC);
        appendHexDouble(text, config.power.baselineW);
    }
    return hashLabel(text);
}

} // namespace dora
