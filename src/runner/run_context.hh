/**
 * @file
 * RunContext: one measurement run (ExperimentRunner::runCustom) turned
 * into an explicit, resumable state machine.
 *
 * The legacy run loop owned everything on its stack: the simulated
 * device, the governor driver, the page load, and the window
 * accumulators lived inside one function from warmup to finalization.
 * RunContext hoists that state into an object with an advance() step so
 * that N independent runs can be interleaved on one thread — the lane
 * batch (LaneBatchSimulator) round-robins contexts, and in exact-ticks
 * mode splits each step into advanceBegin()/advanceFinish() so the
 * memory walks of all lanes can be fused into one cross-lane batch
 * (MemSystem::tickSampleMany).
 *
 * Contract: driving a RunContext with `while (!done()) advance();
 * finish()` reproduces the legacy loop bit-for-bit — the transition
 * points, latch order, and accumulator arithmetic are the same
 * statements in the same order (tests/runner/lane_batch_test.cc pins
 * this down at every lane count).
 */

#ifndef DORA_RUNNER_RUN_CONTEXT_HH
#define DORA_RUNNER_RUN_CONTEXT_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "browser/page_load.hh"
#include "power/device_power.hh"
#include "runner/experiment.hh"
#include "sim/simulator.hh"
#include "soc/soc.hh"
#include "stats/running_stat.hh"

namespace dora
{

class FaultInjector;
class RunTrace;

/** Core pinning per the paper: browser on 0-1, co-runner on 2, 3 off. */
constexpr uint32_t kMainCore = 0;
constexpr uint32_t kHelperCore = 1;
constexpr uint32_t kCorunCore = 2;

/** Bounded-retry policy for rejected DVFS writes. */
constexpr int kMaxActuatorRetries = 3;
constexpr double kActuatorRetryBackoffSec = 0.005;  //!< doubles per try

/**
 * Drives a governor at its decision interval, computing the windowed
 * signals (utilizations, MPKI) from perf-counter deltas exactly as a
 * userspace daemon would. An optional FaultInjector perturbs the
 * sensor, actuator, and thermal paths; without one (or with an empty
 * schedule) the driver behaves exactly as the fault-free original.
 */
class GovernorDriver
{
  public:
    GovernorDriver(Simulator &sim, Governor &governor, double deadline_sec,
                   FaultInjector *fault = nullptr);

    /** Set the page context (null while no page is loading). */
    void setPage(const WebPageFeatures *page, double load_start_sec)
    {
        page_ = page;
        loadStartSec_ = load_start_sec;
    }

    /** Attach a run trace sink (null = tracing disabled). */
    void setTrace(RunTrace *trace) { trace_ = trace; }

    /** Invoke the governor if its interval has elapsed. */
    void maybeDecide();

    /** All decisions taken so far (warmup included). */
    const std::vector<DecisionRecord> &decisions() const
    {
        return decisions_;
    }

    /**
     * Earliest simulated time at which this driver can act again: the
     * next decision boundary, or a pending actuator retry, whichever
     * comes first. The event horizon for macro-tick batching — between
     * now and this time, maybeDecide() is a guaranteed no-op, so the
     * ticks in between are quiescent and may be batched.
     */
    double nextEventSec() const;

    /**
     * Serialize the driver's decision/retry state (not the governor —
     * the caller snapshots that separately). Same-object restore only.
     */
    void snapshot(SnapshotWriter &w) const;
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    void applyFrequency(double now, size_t target);
    void maybeRetryActuator(double now);
    void applyThermalEmergency(double now);

    Simulator &sim_;  // dora:snapshot-exclude(snapshotted by the owner)
    Governor &governor_;  // dora:snapshot-exclude(snapshotted by the owner)
    double deadlineSec_;  // dora:snapshot-exclude(construction config)
    PerfSnapshot prev_;
    // dora:snapshot-exclude(snapshots refuse fault-injected runs)
    FaultInjector *fault_;          //!< null when fault-free
    double baseAmbientC_;  // dora:snapshot-exclude(derived at construction)
    double appliedAmbientDeltaC_ = 0.0;
    bool havePendingWrite_ = false;
    size_t pendingTarget_ = 0;
    int retryAttempts_ = 0;
    double retryBackoffSec_ = 0.0;
    double nextRetrySec_ = 0.0;
    bool warnedOutOfRange_ = false;
    // dora:snapshot-exclude(same-object restore: binding must match)
    const WebPageFeatures *page_ = nullptr;
    double loadStartSec_ = 0.0;
    double lastDecisionSec_ = 0.0;
    bool decided_ = false;
    // dora:snapshot-exclude(snapshots refuse traced runs)
    RunTrace *trace_ = nullptr;  //!< null when tracing is disabled
    std::vector<DecisionRecord> decisions_;
};

/**
 * One run in flight. Construction replicates the legacy runCustom()
 * preamble (device build, task binding, governor reset, trace attach);
 * advance() executes one scheduling quantum — a single tick in
 * exact-ticks mode, one macro-tick batch otherwise; finish() performs
 * the legacy finalization and returns the measurement.
 */
class RunContext
{
  public:
    struct Params
    {
        const WebPage *page = nullptr;  //!< null: co-runner alone
        Task *corun = nullptr;          //!< null: page alone
        std::string label;
        Governor *governor = nullptr;   //!< required
        std::optional<size_t> initialFreq;
        FaultInjector *fault = nullptr; //!< non-owning; reset per run
    };

    /** What the next exact-ticks step needs from the caller. */
    enum class StepPlan
    {
        Finished,  //!< run complete; no step pending
        NoWalk,    //!< step needs no memory walk: call advanceFinish()
        Walk,      //!< walk pending: fuse soc().walkJob() or walk
                   //!< locally, then advanceFinish()
    };

    RunContext(const ExperimentConfig &config, const Params &params);
    ~RunContext();

    RunContext(const RunContext &) = delete;
    RunContext &operator=(const RunContext &) = delete;

    /** True once the measurement window has closed. */
    bool done();

    /**
     * Execute one quantum: a single tick in exact-ticks mode, else one
     * macro-tick batch up to the driver's next event horizon. No-op
     * when done.
     */
    void advance();

    /**
     * First half of one exact-ticks step: phase transitions, governor
     * decision, pre-step latches, Simulator::stepBegin(). The caller
     * must complete the step per the returned plan before touching this
     * context again. Exact-ticks mode only (panics otherwise).
     */
    StepPlan advanceBegin();

    /**
     * Second half of one exact-ticks step: Simulator::stepFinish() plus
     * the window accumulators. Pairs with an advanceBegin() that
     * returned NoWalk (directly) or Walk (after the walk ran).
     */
    void advanceFinish();

    /**
     * Legacy finalization: assemble the RunMeasurement, bump metrics,
     * submit the trace (first call only). Callable repeatedly — the
     * snapshot-rewind test finishes, restores, and finishes again.
     */
    RunMeasurement finish();

    Soc &soc() { return *soc_; }
    Simulator &sim() { return *sim_; }

    /** True when this run executes the exact per-tick loop. */
    bool exactTicks() const { return exact_; }

    /**
     * Serialize the full run state mid-flight. Refuses (panics) when a
     * trace or fault injector is attached — neither supports snapshot.
     * Restore into the SAME context (same label/page/corun/governor).
     */
    void snapshot(SnapshotWriter &w) const;
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    enum class Phase : uint8_t { Warmup = 0, Window = 1, Done = 2 };

    /** Apply every pending stepless phase transition. */
    void applyTransitions();
    void enterWindow();
    void accumulate(const TickTrace &trace);

    ExperimentConfig config_;  // dora:snapshot-exclude(construction config)
    Params params_;

    std::unique_ptr<Soc> soc_;  // dora:snapshot-exclude(state inside sim_)
    std::unique_ptr<DevicePower> power_;  // dora:snapshot-exclude(in sim_)
    std::unique_ptr<Simulator> sim_;
    uint64_t salt_ = 0;  // dora:snapshot-exclude(derived from the label)
    std::unique_ptr<GovernorDriver> driver_;
    // dora:snapshot-exclude(snapshots refuse traced runs)
    std::unique_ptr<RunTrace> trace_;
    bool exact_ = false;  // dora:snapshot-exclude(construction mode flag)

    Phase phase_ = Phase::Warmup;
    std::unique_ptr<PageLoad> page_;
    RenderCostModel cost_;  // dora:snapshot-exclude(construction config)

    // Window accumulators (legacy loop locals).
    double t0_ = 0.0;
    double e0_ = 0.0;
    PerfSnapshot p0_;
    uint64_t switches0_ = 0;
    double corunBusy0_ = 0.0;
    RunningStat tempStat_;
    double freqTimeMhz_ = 0.0;
    std::vector<double> residency_;
    PowerBreakdown breakdownSum_;
    uint64_t windowTicks_ = 0;
    double windowWall_ = 0.0;
    double windowEnd_ = 0.0;

    // advanceBegin()/advanceFinish() handshake: live only inside one
    // split step, rewritten by every advanceBegin(); snapshots are
    // taken between whole steps.
    bool stepInWindow_ = false;  // dora:snapshot-exclude(per-step scratch)
    double stepMhz_ = 0.0;  // dora:snapshot-exclude(per-step scratch)

    bool reported_ = false;  //!< metrics/trace emitted by finish()
};

} // namespace dora

#endif // DORA_RUNNER_RUN_CONTEXT_HH
