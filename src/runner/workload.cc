#include "runner/workload.hh"

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace dora
{

std::string
WorkloadSpec::label() const
{
    std::string out = page ? page->name : "(none)";
    out += "+";
    out += kernel ? kernel->name : "alone";
    return out;
}

bool
WorkloadSpec::isWebpageInclusive() const
{
    return page != nullptr && page->trainingSet;
}

WorkloadSpec
WorkloadSets::combo(const WebPage &page, MemIntensity cls)
{
    WorkloadSpec w;
    w.page = &page;
    const auto kernels = KernelCatalog::byClass(cls);
    if (kernels.empty())
        fatal("WorkloadSets::combo: no kernels in class '%s'",
              memIntensityName(cls));
    // Deterministic rotation: the page's identity picks the kernel
    // within the class, so every kernel appears across the corpus.
    const uint64_t slot = hashLabel(page.name) % kernels.size();
    w.kernel = kernels[slot];
    return w;
}

WorkloadSpec
WorkloadSets::alone(const WebPage &page)
{
    WorkloadSpec w;
    w.page = &page;
    return w;
}

WorkloadSpec
WorkloadSets::kernelOnly(const KernelSpec &kernel)
{
    WorkloadSpec w;
    w.kernel = &kernel;
    return w;
}

std::vector<WorkloadSpec>
WorkloadSets::paperCombinations()
{
    std::vector<WorkloadSpec> out;
    for (const auto &page : PageCorpus::all()) {
        out.push_back(combo(page, MemIntensity::Low));
        out.push_back(combo(page, MemIntensity::Medium));
        out.push_back(combo(page, MemIntensity::High));
    }
    return out;
}

std::vector<WorkloadSpec>
WorkloadSets::webpageInclusive()
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : paperCombinations())
        if (w.isWebpageInclusive())
            out.push_back(w);
    return out;
}

std::vector<WorkloadSpec>
WorkloadSets::webpageNeutral()
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : paperCombinations())
        if (!w.isWebpageInclusive())
            out.push_back(w);
    return out;
}

} // namespace dora
