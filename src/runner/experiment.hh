/**
 * @file
 * ExperimentRunner: builds a fresh simulated Nexus 5, pins a workload
 * onto it, drives the chosen governor at its decision interval, and
 * measures the page-load window exactly the way the paper's DAQ +
 * instrumented-browser methodology does.
 *
 * Measurement protocol per run:
 *   1. construct SoC + device power at the requested ambient;
 *   2. warm up: the co-runner executes alone for warmupSec with the
 *      governor already in control;
 *   3. the page load starts; every metric below covers the window from
 *      load start to load completion (or the load-time wall);
 *   4. report load time, window energy, mean power, PPW = 1/(t x P),
 *      windowed L2 MPKI, co-runner utilization, temperatures, and DVFS
 *      switch counts.
 */

#ifndef DORA_RUNNER_EXPERIMENT_HH
#define DORA_RUNNER_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "governor/governor.hh"
#include "power/device_power.hh"
#include "runner/workload.hh"
#include "sim/simulator.hh"
#include "soc/soc.hh"

namespace dora
{

class FaultInjector;

/** Per-run configuration. */
struct ExperimentConfig
{
    double deadlineSec = 3.0;   //!< QoS target handed to governors
    double warmupSec = 2.0;     //!< co-runner lead-in + thermal settle
    double dtSec = 1e-3;        //!< simulation tick
    double maxLoadSec = 15.0;   //!< wall for a single page load
    double measureSec = 1.0;    //!< window for page-less runs
    double ambientC = 25.0;     //!< room (or chamber) temperature
    /**
     * Die-over-ambient temperature at the start of each run: the
     * device is warm from prior use. With the fast junction node
     * (thermal tau ~1.3 s) the die then settles to the steady state of
     * the chosen operating point within the load, reproducing the
     * paper's 58-65 degC range at high frequency and room ambient.
     */
    double warmDieDeltaC = 20.0;
    /**
     * Fleet heterogeneity (src/fleet): per-device perturbation of the
     * stock Nexus 5. freqScale multiplies every OPP's core and bus
     * clock (silicon speed binning), voltageScale multiplies every
     * rail voltage (corner voltage binning — it shifts both dynamic
     * CV^2f power and the exponential leakage term), and
     * thermalResistanceScale multiplies the junction-to-ambient
     * thermal resistance (case, skin-contact and cooling spread).
     * All 1.0 (the default) is the paper-fidelity device; the scales
     * fold into experimentConfigHash() only when non-default so every
     * existing campaign hash and cached bundle is unaffected.
     */
    double freqScale = 1.0;
    double voltageScale = 1.0;
    double thermalResistanceScale = 1.0;
    SocConfig soc;
    DevicePowerConfig power;
};

/** One governor decision, for traces (Fig. 4's periodic loop). */
struct DecisionRecord
{
    double tSec = 0.0;        //!< simulated time of the decision
    /** OPP granted by the actuator (== the request when fault-free). */
    size_t freqIndex = 0;
    /** OPP the governor asked for (before any actuator fault). */
    size_t requestedFreqIndex = 0;
    double l2Mpki = 0.0;      //!< X6 seen by the governor
    double corunUtil = 0.0;   //!< X9 seen by the governor
    /** True die temperature at the decision (not the sensor reading). */
    double temperatureC = 0.0;
};

/** Everything measured over one run's measurement window. */
struct RunMeasurement
{
    std::string workload;
    std::string governor;

    double loadTimeSec = 0.0;   //!< window length if page didn't finish
    bool pageFinished = false;
    bool meetsDeadline = false;
    /**
     * True when the run had a page that did not finish inside the
     * load-time wall: loadTimeSec is then the *window length*, a lower
     * bound on the real load time, not an observation of it. Censored
     * runs report ppw = 0 and must be counted, never averaged —
     * otherwise a governor that fails a page outright can score better
     * than one that finishes it late.
     */
    bool censored = false;

    double energyJ = 0.0;       //!< device energy over the window
    double meanPowerW = 0.0;
    double ppw = 0.0;           //!< (1/loadTime)/meanPower = 1/energy

    double meanL2Mpki = 0.0;    //!< X6 averaged over the window
    double meanCorunUtil = 0.0; //!< X9 averaged over the window
    double meanTempC = 0.0;
    double peakTempC = 0.0;
    double meanFreqMhz = 0.0;   //!< time-weighted
    uint64_t freqSwitches = 0;

    /** Seconds spent at each OPP during the window (index-aligned). */
    std::vector<double> freqResidencySec;

    /** Governor decisions taken during the window, in order. */
    std::vector<DecisionRecord> decisions;

    /** Mean power breakdown over the window (component means, W). */
    PowerBreakdown meanBreakdown;
};

/** One idle-power observation for leakage fitting. */
struct IdleSample
{
    double voltage = 0.0;
    double tempC = 0.0;
    double powerW = 0.0;
};

/**
 * Canonical bit-exact text rendering of a measurement: every double is
 * printed as a hex float (%a), so two measurements render identically
 * iff they are bit-identical. Used by the determinism tests and
 * bench/ext_parallel_scaling to prove that parallel sweeps reproduce
 * the serial results exactly.
 */
std::string runMeasurementText(const RunMeasurement &m);

/** FNV-1a digest of runMeasurementText(). */
uint64_t runMeasurementDigest(const RunMeasurement &m);

/**
 * Hash of the measurement protocol: every ExperimentConfig scalar plus
 * a revision token that is bumped whenever the run recipe changes in a
 * way that alters results (e.g. the RNG stream layout). Recorded in
 * trace manifests and folded into the training-cache key.
 */
uint64_t experimentConfigHash(const ExperimentConfig &config);

/**
 * The DVFS table of the device @p config describes: the stock MSM8974
 * table with every OPP scaled by freqScale/voltageScale. Returns the
 * untouched stock table for the default (all-1.0) config.
 */
FreqTable deviceFreqTable(const ExperimentConfig &config);

/**
 * Runs workloads on freshly constructed simulated devices.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const ExperimentConfig &config = {});

    /** The DVFS table of the simulated device. */
    const FreqTable &freqTable() const { return freqTable_; }

    /**
     * Run @p workload under @p governor.
     * @param initial_freq  starting OPP (defaults to the governor's
     *                      first decision; training runs pin it)
     */
    RunMeasurement run(const WorkloadSpec &workload, Governor &governor,
                       std::optional<size_t> initial_freq = std::nullopt);

    /** Run @p workload pinned at OPP @p freq_index for the whole run. */
    RunMeasurement runAtFrequency(const WorkloadSpec &workload,
                                  size_t freq_index);

    /**
     * Run with a caller-provided co-scheduled task (e.g. a
     * PhasedCorunTask whose intensity changes mid-load). @p corun_task
     * may be null (page alone); @p page may be null (co-runner alone).
     */
    RunMeasurement runCustom(const WebPage *page, Task *corun_task,
                             const std::string &label,
                             Governor &governor,
                             std::optional<size_t> initial_freq =
                                 std::nullopt);

    /**
     * Thermal-chamber style idle characterization: sample idle device
     * power and die temperature at every OPP under each ambient
     * temperature. Feeds the leakage fit.
     *
     * Each (ambient, OPP) cell simulates an independent device, so the
     * grid is fanned out across @p jobs workers (1 = serial legacy
     * path; 0 = defaultJobCount()). Sample order is independent of the
     * job count: ambient-major, then OPP, then time.
     */
    std::vector<IdleSample>
    idleCharacterization(const std::vector<double> &ambients_c,
                         double settle_sec = 2.0,
                         double sample_sec = 0.5,
                         unsigned jobs = 1);

    /**
     * Device power with the SoC power-collapsed (cores and caches
     * gated, leakage rail off): display/radio baseline plus DRAM
     * self-refresh. This is the "floor" measurement every phone power
     * lab takes first; subtracting it from idle samples makes the
     * leakage fit well-posed (a constant offset is otherwise
     * indistinguishable from the k2*e^(gamma*v+delta) term).
     */
    double socCollapsedFloorW() const;

    const ExperimentConfig &config() const { return config_; }

    /** Mutable config access (deadline sweeps, ambient studies). */
    ExperimentConfig &mutableConfig() { return config_; }

    /**
     * Attach a fault injector to the signal path of subsequent runs
     * (non-owning; pass nullptr to detach). The injector is reset at
     * the start of every run so each run sees the same deterministic
     * fault stream. An injector with an all-zero schedule is a strict
     * no-op: runs reproduce bit-identical measurements.
     */
    void setFaultInjector(FaultInjector *injector)
    {
        faultInjector_ = injector;
    }

    /** The currently attached injector (nullptr when none). */
    FaultInjector *faultInjector() const { return faultInjector_; }

  private:
    ExperimentConfig config_;
    FreqTable freqTable_;
    FaultInjector *faultInjector_ = nullptr;
};

} // namespace dora

#endif // DORA_RUNNER_EXPERIMENT_HH
