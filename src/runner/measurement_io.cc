#include "runner/measurement_io.hh"

#include <utility>

#include "common/snapshot.hh"

namespace dora
{

namespace
{

constexpr std::string_view kTag = "meas";
constexpr uint32_t kVersion = 1;

} // namespace

std::string
serializeRunMeasurement(const RunMeasurement &m)
{
    SnapshotWriter w;
    w.beginSection(kTag, kVersion);
    w.putString(m.workload);
    w.putString(m.governor);
    w.putDouble(m.loadTimeSec);
    w.putBool(m.pageFinished);
    w.putBool(m.meetsDeadline);
    w.putBool(m.censored);
    w.putDouble(m.energyJ);
    w.putDouble(m.meanPowerW);
    w.putDouble(m.ppw);
    w.putDouble(m.meanL2Mpki);
    w.putDouble(m.meanCorunUtil);
    w.putDouble(m.meanTempC);
    w.putDouble(m.peakTempC);
    w.putDouble(m.meanFreqMhz);
    w.putU64(m.freqSwitches);
    w.putDoubles(m.freqResidencySec);
    w.putSize(m.decisions.size());
    for (const DecisionRecord &d : m.decisions) {
        w.putDouble(d.tSec);
        w.putSize(d.freqIndex);
        w.putSize(d.requestedFreqIndex);
        w.putDouble(d.l2Mpki);
        w.putDouble(d.corunUtil);
        w.putDouble(d.temperatureC);
    }
    w.putDouble(m.meanBreakdown.baseline);
    w.putDouble(m.meanBreakdown.coreDynamic);
    w.putDouble(m.meanBreakdown.l2Traffic);
    w.putDouble(m.meanBreakdown.dram);
    w.putDouble(m.meanBreakdown.leakage);
    w.putDouble(m.meanBreakdown.dvfsSwitch);
    return w.finish();
}

bool
tryDeserializeRunMeasurement(std::string_view bytes,
                             RunMeasurement *out)
{
    SnapshotReader r(bytes);
    if (!r.checksumOk() || !r.beginSection(kTag, kVersion))
        return false;

    RunMeasurement m;
    size_t decisions = 0;
    if (!r.getString(&m.workload) || !r.getString(&m.governor) ||
        !r.getDouble(&m.loadTimeSec) || !r.getBool(&m.pageFinished) ||
        !r.getBool(&m.meetsDeadline) || !r.getBool(&m.censored) ||
        !r.getDouble(&m.energyJ) || !r.getDouble(&m.meanPowerW) ||
        !r.getDouble(&m.ppw) || !r.getDouble(&m.meanL2Mpki) ||
        !r.getDouble(&m.meanCorunUtil) || !r.getDouble(&m.meanTempC) ||
        !r.getDouble(&m.peakTempC) || !r.getDouble(&m.meanFreqMhz) ||
        !r.getU64(&m.freqSwitches) ||
        !r.getDoubles(&m.freqResidencySec) || !r.getSize(&decisions))
        return false;
    m.decisions.resize(decisions);
    for (DecisionRecord &d : m.decisions) {
        if (!r.getDouble(&d.tSec) || !r.getSize(&d.freqIndex) ||
            !r.getSize(&d.requestedFreqIndex) ||
            !r.getDouble(&d.l2Mpki) || !r.getDouble(&d.corunUtil) ||
            !r.getDouble(&d.temperatureC))
            return false;
    }
    PowerBreakdown &b = m.meanBreakdown;
    if (!r.getDouble(&b.baseline) || !r.getDouble(&b.coreDynamic) ||
        !r.getDouble(&b.l2Traffic) || !r.getDouble(&b.dram) ||
        !r.getDouble(&b.leakage) || !r.getDouble(&b.dvfsSwitch))
        return false;
    if (!r.atEnd())
        return false;
    *out = std::move(m);
    return true;
}

std::string
packPayloads(const std::vector<std::string> &payloads)
{
    SnapshotWriter w;
    w.beginSection("pack", 1);
    w.putSize(payloads.size());
    for (const std::string &p : payloads)
        w.putString(p);
    return w.finish();
}

bool
tryUnpackPayloads(std::string_view bytes, std::vector<std::string> *out)
{
    SnapshotReader r(bytes);
    if (!r.checksumOk() || !r.beginSection("pack", 1))
        return false;
    size_t count;
    if (!r.getSize(&count))
        return false;
    std::vector<std::string> payloads(count);
    for (std::string &p : payloads)
        if (!r.getString(&p))
            return false;
    if (!r.atEnd())
        return false;
    *out = std::move(payloads);
    return true;
}

} // namespace dora
