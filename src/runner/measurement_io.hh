/**
 * @file
 * Bit-exact binary serialization of RunMeasurement for the process
 * execution tier (exec/proc). A measurement computed in a worker
 * subprocess crosses the pipe — and the results journal — as these
 * bytes; deserialize(serialize(m)) reproduces every field bit-for-bit
 * (doubles travel as raw IEEE-754 bit patterns via common/snapshot).
 *
 * Same-build artifact only: the encoding carries a section version and
 * a checksum, so a stale journal from an older build fails loudly in
 * tryDeserializeRunMeasurement() instead of misparsing.
 */

#ifndef DORA_RUNNER_MEASUREMENT_IO_HH
#define DORA_RUNNER_MEASUREMENT_IO_HH

#include <string>
#include <string_view>
#include <vector>

#include "runner/experiment.hh"

namespace dora
{

/** Encode @p m as a checksummed binary payload. */
std::string serializeRunMeasurement(const RunMeasurement &m);

/**
 * Decode a payload produced by serializeRunMeasurement(). On success
 * @p out holds the bit-identical measurement; on checksum/version/
 * shape mismatch returns false and leaves @p out untouched.
 */
[[nodiscard]] bool
tryDeserializeRunMeasurement(std::string_view bytes, RunMeasurement *out);

/**
 * Concatenate payloads into one checksummed buffer (the process tier
 * ships a whole lane batch as one unit result).
 */
std::string packPayloads(const std::vector<std::string> &payloads);

/**
 * Invert packPayloads(). On checksum/shape mismatch returns false and
 * leaves @p out untouched.
 */
[[nodiscard]] bool
tryUnpackPayloads(std::string_view bytes, std::vector<std::string> *out);

} // namespace dora

#endif // DORA_RUNNER_MEASUREMENT_IO_HH
