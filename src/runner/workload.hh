/**
 * @file
 * Workload combinations — the paper's multiprogrammed scenarios.
 *
 * A workload is one web page co-scheduled with (at most) one co-run
 * kernel: Firefox on cores 0-1, the kernel on core 2, core 4 off
 * (Section IV-B). The paper builds 54 combinations: each of the 18
 * pages paired with one application from each of the low, medium, and
 * high memory-intensity categories. Kernels rotate across pages within
 * a category so the training data covers every kernel.
 */

#ifndef DORA_RUNNER_WORKLOAD_HH
#define DORA_RUNNER_WORKLOAD_HH

#include <string>
#include <vector>

#include "browser/web_page.hh"
#include "workloads/kernel.hh"

namespace dora
{

/** One multiprogrammed workload. */
struct WorkloadSpec
{
    const WebPage *page = nullptr;      //!< null = no browser
    const KernelSpec *kernel = nullptr; //!< null = browser alone

    /** "page+kernel" (or "page+alone"), for tables and logs. */
    std::string label() const;

    /** True when the page belongs to the model-training set. */
    bool isWebpageInclusive() const;
};

/**
 * Builders for the paper's workload sets.
 */
class WorkloadSets
{
  public:
    /** All 54 combinations (18 pages x {low, medium, high}). */
    static std::vector<WorkloadSpec> paperCombinations();

    /** The 42 Webpage-Inclusive (training-page) combinations. */
    static std::vector<WorkloadSpec> webpageInclusive();

    /** The 12 Webpage-Neutral (held-out-page) combinations. */
    static std::vector<WorkloadSpec> webpageNeutral();

    /** A specific page x intensity-class pairing (rotation rule). */
    static WorkloadSpec combo(const WebPage &page, MemIntensity cls);

    /** Page alone (no interference). */
    static WorkloadSpec alone(const WebPage &page);

    /** Kernel alone (no browser) — for MPKI classification runs. */
    static WorkloadSpec kernelOnly(const KernelSpec &kernel);
};

} // namespace dora

#endif // DORA_RUNNER_WORKLOAD_HH
