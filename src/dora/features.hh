/**
 * @file
 * The model feature vector — Table I of the paper.
 *
 *   X1 number of DOM tree nodes        (static, from the page)
 *   X2 number of class attributes      (static)
 *   X3 number of href attributes       (static)
 *   X4 number of "a" tags              (static)
 *   X5 number of "div" tags            (static)
 *   X6 shared L2 cache MPKI            (runtime, perf counters)
 *   X7 core frequency                  (the candidate OPP)
 *   X8 memory bus frequency            (slaved to X7)
 *   X9 core utilization of the co-scheduled task (runtime)
 */

#ifndef DORA_DORA_FEATURES_HH
#define DORA_DORA_FEATURES_HH

#include <cstddef>
#include <string>
#include <vector>

#include "browser/web_page.hh"

namespace dora
{

/** Number of model inputs (Table I). */
constexpr size_t kNumFeatures = 9;

/** Human-readable names, index-aligned with buildFeatureVector(). */
const std::vector<std::string> &featureNames();

/**
 * Assemble the X1..X9 vector for one prediction or training sample.
 *
 * @param page        static page features (X1-X5)
 * @param l2_mpki     X6: shared L2 MPKI over the last interval
 * @param core_mhz    X7: candidate core frequency
 * @param bus_mhz     X8: memory bus frequency of that OPP
 * @param corun_util  X9: co-scheduled task core utilization
 */
std::vector<double> buildFeatureVector(const WebPageFeatures &page,
                                       double l2_mpki, double core_mhz,
                                       double bus_mhz, double corun_util);

} // namespace dora

#endif // DORA_DORA_FEATURES_HH
