/**
 * @file
 * Offline training pipeline (paper Sections III-A/B and IV-C).
 *
 * Reproduces the paper's methodology end to end on the simulated
 * device:
 *   1. idle characterization across a thermal-chamber ambient sweep,
 *      then a non-linear (Levenberg-Marquardt) fit of the Liao leakage
 *      parameters from the (voltage, temperature, power) samples;
 *   2. measurement of every Webpage-Inclusive workload combination at
 *      a set of pinned frequencies covering all memory-bus groups —
 *      420 measurements ("over 300" in the paper);
 *   3. least-squares fits: piece-wise interaction surface for load
 *      time, piece-wise linear surface for non-leakage power (measured
 *      power minus fitted leakage).
 *
 * Training is expensive (hundreds of full page-load simulations), so
 * trainCached() persists the bundle next to the binary and reuses it
 * when the format version matches.
 */

#ifndef DORA_DORA_TRAINER_HH
#define DORA_DORA_TRAINER_HH

#include <string>
#include <vector>

#include "dora/model_bundle.hh"
#include "model/gauss_newton.hh"
#include "runner/experiment.hh"

namespace dora
{

/** Trainer options. */
struct TrainerConfig
{
    ExperimentConfig experiment;

    /**
     * OPP indices to measure at; empty selects the default set of ten
     * frequencies spanning all four memory-bus groups.
     */
    std::vector<size_t> trainingFreqIndices;

    /** Thermal-chamber ambients for the leakage characterization. */
    std::vector<double> chamberAmbientsC = {15.0, 25.0, 35.0, 45.0,
                                            55.0};

    /**
     * Ridge strengths (on z-scored designs). The interaction surface
     * has ~46 terms against 14 distinct pages, so the time model needs
     * real shrinkage to generalize to held-out pages; the linear power
     * surface barely needs any.
     */
    double timeRidge = 0.5;
    double powerRidge = 1e-4;

    /**
     * Cap on the number of Webpage-Inclusive workloads measured
     * (0 = all 42). Reduced configurations are for fast integration
     * tests only — production training uses the full set.
     */
    size_t maxTrainingWorkloads = 0;

    /**
     * Parallelism for the measurement campaign and the idle grid
     * (0 = defaultJobCount(); 1 = legacy serial path). Results are
     * bit-identical at every job count, so this field is deliberately
     * excluded from trainingConfigHash(): a bundle trained at any
     * parallelism stays cache-valid.
     */
    unsigned jobs = 0;  // dora:hash-exclude(bit-identical at any job count)

    /**
     * Route the measurement campaign through the crash-resilient
     * process tier (exec/proc): worker subprocesses per campaign
     * (0 = in-process thread pool, the default). Bit-identical to
     * workers=0 and, like jobs, excluded from trainingConfigHash().
     */
    unsigned workers = 0;  // dora:hash-exclude(bit-identical to workers=0)

    /**
     * Lane batching (sim/lane_batch.hh) for the measurement campaign:
     * cells are packed into batches of this many runs advanced
     * interleaved on one thread. Composes with jobs (each pool job
     * runs a batch) and workers (each worker unit is a batch).
     * 0 = $DORA_LANES (see common/lanes.hh); <= 1 is the exact legacy
     * per-cell path. Bit-identical at every lane count and, like jobs,
     * excluded from trainingConfigHash().
     */
    unsigned lanes = 0;  // dora:hash-exclude(bit-identical at any lane count)

    /**
     * Journal stem for process-tier campaigns: completed cells land in
     * `<stem>.<campaign-hash>.jrn` and a rerun resumes from them.
     * Empty disables journaling. Excluded from trainingConfigHash().
     */
    // dora:hash-exclude(resume aid, not part of the protocol)
    std::string procJournalStem;
};

/** One (features -> targets) observation from a measurement run. */
struct TrainingSample
{
    std::vector<double> x;     //!< Table I feature vector
    double busMhz = 0.0;
    double voltage = 0.0;
    double loadTimeSec = 0.0;  //!< time-model target
    double meanPowerW = 0.0;   //!< raw power (leakage not yet removed)
    double meanTempC = 0.0;
};

/** Summary of one training invocation. */
struct TrainingReport
{
    size_t numMeasurements = 0;
    size_t numIdleSamples = 0;
    double timeTrainMeanPctErr = 0.0;
    double powerTrainMeanPctErr = 0.0;
    double leakageRmseW = 0.0;
    size_t leakageIterations = 0;
    bool leakageConverged = false;
};

/**
 * Deterministic hash (FNV-1a over a canonical text rendering) of every
 * TrainerConfig field that shapes the trained coefficients. Stamped
 * into ModelBundle::configHash by train() and checked by trainCached():
 * a cache file trained under a different configuration (other ridge
 * strengths, reduced workload set, different measurement protocol) is
 * retrained instead of silently reused.
 */
uint64_t trainingConfigHash(const TrainerConfig &config);

/**
 * Trains a ModelBundle against the simulated device.
 */
class Trainer
{
  public:
    explicit Trainer(const TrainerConfig &config = {});

    /** Full pipeline; also fills report() and samples(). */
    ModelBundle train();

    /** Load @p path if fresh, else train() and save there. */
    ModelBundle trainCached(const std::string &path);

    /**
     * Measure (features, load time, power) samples for arbitrary
     * workloads at the given OPPs — used for held-out evaluation.
     */
    std::vector<TrainingSample>
    collectSamples(const std::vector<WorkloadSpec> &workloads,
                   const std::vector<size_t> &freq_indices);

    /**
     * Fit the six Liao leakage parameters from idle samples, after
     * subtracting the SoC-collapsed floor power @p floor_w (makes the
     * fit identifiable; see ExperimentRunner::socCollapsedFloorW()).
     */
    static GaussNewtonResult
    fitLeakage(const std::vector<IdleSample> &samples, double floor_w);

    /**
     * Group samples into per-bus-frequency datasets.
     * @param target 0 = load time, 1 = raw power, 2 = power minus the
     *               given fitted leakage
     */
    static std::vector<std::pair<double, Dataset>>
    datasetsByBus(const std::vector<TrainingSample> &samples, int target,
                  const LeakageParams *leakage = nullptr);

    /** The default ten training OPP indices for @p table. */
    static std::vector<size_t>
    defaultTrainingFreqs(const FreqTable &table);

    /** Samples collected by the last train() call. */
    const std::vector<TrainingSample> &samples() const
    {
        return samples_;
    }

    /** Report of the last train() call. */
    const TrainingReport &report() const { return report_; }

    const TrainerConfig &config() const { return config_; }

  private:
    TrainerConfig config_;
    ExperimentRunner runner_;
    std::vector<TrainingSample> samples_;
    TrainingReport report_;
};

} // namespace dora

#endif // DORA_DORA_TRAINER_HH
