/**
 * @file
 * CSV export/import for measurement samples.
 *
 * The trainer's measurement campaign is the expensive part of the
 * pipeline; persisting the raw (features, targets) samples lets model
 * studies (e.g. the fig05 response-surface comparison, or offline
 * experimentation in a spreadsheet/notebook) re-fit without re-running
 * hundreds of simulated page loads.
 */

#ifndef DORA_DORA_SAMPLE_IO_HH
#define DORA_DORA_SAMPLE_IO_HH

#include <string>
#include <string_view>
#include <vector>

#include "dora/trainer.hh"

namespace dora
{

/**
 * Bit-exact binary encoding of one sample (checksummed, versioned)
 * for the process execution tier: samples computed in a worker
 * subprocess cross the pipe and the results journal as these bytes.
 * CSV is for human/export use; this is the lossless wire form.
 */
std::string serializeTrainingSample(const TrainingSample &s);

/**
 * Decode serializeTrainingSample() output. Returns false (leaving
 * @p out untouched) on checksum/version/shape mismatch.
 */
[[nodiscard]] bool tryDeserializeTrainingSample(std::string_view bytes,
                                                TrainingSample *out);

/** Serialize samples as CSV (header + one row per sample). */
std::string samplesToCsv(const std::vector<TrainingSample> &samples);

/**
 * Parse samples from CSV text produced by samplesToCsv().
 * fatal() on malformed input.
 */
std::vector<TrainingSample> samplesFromCsv(const std::string &text);

/** Write samples to @p path; warns and returns false on failure. */
bool saveSamples(const std::vector<TrainingSample> &samples,
                 const std::string &path);

/**
 * Load samples from @p path; returns an empty vector when the file is
 * missing (callers treat that as "collect fresh").
 */
std::vector<TrainingSample> loadSamples(const std::string &path);

} // namespace dora

#endif // DORA_DORA_SAMPLE_IO_HH
