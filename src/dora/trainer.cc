#include "dora/trainer.hh"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <sstream>

#include "common/lanes.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "dora/features.hh"
#include "dora/sample_io.hh"
#include "exec/proc/supervisor.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/leakage.hh"
#include "runner/measurement_io.hh"
#include "sim/lane_batch.hh"
#include "workloads/corun_task.hh"

namespace dora
{

Trainer::Trainer(const TrainerConfig &config)
    : config_(config), runner_(config.experiment)
{
    if (config_.trainingFreqIndices.empty())
        config_.trainingFreqIndices =
            defaultTrainingFreqs(runner_.freqTable());
}

uint64_t
trainingConfigHash(const TrainerConfig &config)
{
    std::ostringstream text;
    text.precision(17);
    const ExperimentConfig &e = config.experiment;
    // experimentConfigHash() carries the measurement-protocol revision
    // token, so cached bundles retrain whenever the run recipe changes
    // results (e.g. the rev2 RNG-salt decorrelation).
    text << "protocol " << experimentConfigHash(e);
    text << " deadline " << e.deadlineSec << " warmup " << e.warmupSec
         << " dt " << e.dtSec << " maxload " << e.maxLoadSec
         << " measure " << e.measureSec << " ambient " << e.ambientC
         << " warmdie " << e.warmDieDeltaC;
    text << " freqs";
    for (size_t f : config.trainingFreqIndices)
        text << " " << f;
    text << " chamber";
    for (double a : config.chamberAmbientsC)
        text << " " << a;
    text << " timeridge " << config.timeRidge << " powerridge "
         << config.powerRidge << " maxworkloads "
         << config.maxTrainingWorkloads;
    // config.jobs, config.workers, config.lanes, and
    // config.procJournalStem are deliberately not hashed: parallel,
    // process-tier, and lane-batched collection are bit-identical to
    // serial, so the execution tier does not shape the trained
    // coefficients and must not invalidate cached bundles.
    return hashLabel(text.str());
}

std::vector<size_t>
Trainer::defaultTrainingFreqs(const FreqTable &table)
{
    // Ten OPPs spanning all four memory-bus groups (MHz targets).
    const double targets[] = {300.0,  422.4,  729.6,  883.2,  960.0,
                              1190.4, 1497.6, 1728.0, 1958.4, 2265.6};
    std::vector<size_t> indices;
    for (double mhz : targets) {
        const size_t idx = table.nearestIndex(mhz);
        if (indices.empty() || indices.back() != idx)
            indices.push_back(idx);
    }
    return indices;
}

std::vector<TrainingSample>
Trainer::collectSamples(const std::vector<WorkloadSpec> &workloads,
                        const std::vector<size_t> &freq_indices)
{
    for (const auto &workload : workloads)
        if (workload.page == nullptr)
            fatal("Trainer::collectSamples: workload without a page");

    // One cell per (workload, OPP) pair, fanned out across the pool.
    // Every run constructs its own simulated device, so parallel
    // collection is bit-identical to the legacy serial loop; results
    // are assembled in grid order (workload-major).
    static MetricCounter &samples_collected =
        MetricsRegistry::global().counter("trainer.samples_collected");
    const size_t freqs = freq_indices.size();
    auto to_sample = [&](size_t cell, const RunMeasurement &m) {
        const WorkloadSpec &workload = workloads[cell / freqs];
        const size_t f = freq_indices[cell % freqs];
        samples_collected.add();
        const OperatingPoint &opp = runner_.freqTable().opp(f);
        TrainingSample s;
        s.x = buildFeatureVector(workload.page->features, m.meanL2Mpki,
                                 opp.coreMhz, opp.busMhz,
                                 m.meanCorunUtil);
        s.busMhz = opp.busMhz;
        s.voltage = opp.voltage;
        s.loadTimeSec = m.loadTimeSec;
        s.meanPowerW = m.meanPowerW;
        s.meanTempC = m.meanTempC;
        return s;
    };
    auto run_cell = [&](ExperimentRunner &runner, size_t cell) {
        const WorkloadSpec &workload = workloads[cell / freqs];
        const size_t f = freq_indices[cell % freqs];
        return to_sample(cell, runner.runAtFrequency(workload, f));
    };

    const size_t cells = workloads.size() * freqs;
    const ExperimentConfig experiment_config = runner_.config();
    const unsigned lanes =
        config_.lanes ? config_.lanes : defaultLaneCount();
    const bool lane_tier = lanes > 1 && cells > 1;

    // Lane tier: cells packed into batches of `lanes` runs advanced
    // interleaved (sim/lane_batch.hh). Each cell mirrors
    // runAtFrequency() — a FixedGovernor pinned at the OPP, which is
    // also the initial frequency, and the run() corun salt recipe —
    // so the samples are bit-identical to the per-cell tiers.
    auto run_lane_batch = [&](size_t first, size_t count) {
        std::vector<std::unique_ptr<Governor>> governors;
        std::vector<std::unique_ptr<Task>> coruns;
        std::vector<RunContext::Params> specs;
        governors.reserve(count);
        coruns.reserve(count);
        specs.reserve(count);
        for (size_t i = 0; i < count; ++i) {
            const size_t cell = first + i;
            const WorkloadSpec &workload = workloads[cell / freqs];
            const size_t f = freq_indices[cell % freqs];
            governors.push_back(std::make_unique<FixedGovernor>(f));
            RunContext::Params p;
            p.page = workload.page;
            if (workload.kernel) {
                const uint64_t salt =
                    // dora:stream-tag-shared(same corun stream)
                    hashLabel("corun:" + workload.label()) % 4096;
                coruns.push_back(std::make_unique<CorunTask>(
                    *workload.kernel, salt));
                p.corun = coruns.back().get();
            }
            p.label = workload.label();
            p.governor = governors.back().get();
            p.initialFreq = f;
            specs.push_back(std::move(p));
        }
        LaneBatchSimulator batch(experiment_config, std::move(specs));
        const std::vector<RunMeasurement> ms = batch.finishAll();
        std::vector<TrainingSample> out;
        out.reserve(count);
        for (size_t i = 0; i < count; ++i)
            out.push_back(to_sample(first + i, ms[i]));
        return out;
    };
    const size_t batches = lane_tier ? (cells + lanes - 1) / lanes : 0;
    auto run_batch = [&](size_t b) {
        const size_t first = b * lanes;
        const size_t count = std::min<size_t>(lanes, cells - first);
        return run_lane_batch(first, count);
    };

    if (config_.workers > 0 && lane_tier) {
        // Process tier with lane batching: each worker unit is a
        // whole batch, shipped as one packed payload. The lane count
        // is folded into the campaign hash — a journal written at a
        // different lane count has differently shaped units.
        ProcSweepConfig proc;
        proc.workers = config_.workers;
        std::ostringstream salt;
        salt << "collectSamples " << trainingConfigHash(config_)
             << " cells " << cells;
        for (const auto &w : workloads)
            salt << " " << w.label();
        for (size_t f : freq_indices)
            salt << " " << f;
        salt << " lanes " << lanes;
        proc.campaignHash = hashLabel(salt.str());
        if (!config_.procJournalStem.empty())
            proc.journalPath = config_.procJournalStem + "." +
                hexU64(proc.campaignHash) + ".jrn";

        const ProcSweepReport report = runProcSweep(
            proc, batches, [&](uint64_t b) {
                const std::vector<TrainingSample> ss =
                    run_batch(static_cast<size_t>(b));
                std::vector<std::string> payloads;
                payloads.reserve(ss.size());
                for (const TrainingSample &s : ss)
                    payloads.push_back(serializeTrainingSample(s));
                return packPayloads(payloads);
            });
        if (report.drained) {
            warn("trainer: campaign interrupted by signal %d with "
                 "%llu batches journaled; re-run to resume",
                 report.drainSignal,
                 static_cast<unsigned long long>(report.unitsRun +
                                                 report.unitsResumed));
            ::raise(report.drainSignal);
            fatal("trainer: campaign interrupted");
        }
        std::vector<TrainingSample> out(cells);
        for (size_t b = 0; b < batches; ++b) {
            const size_t first = b * lanes;
            const size_t count = std::min<size_t>(lanes, cells - first);
            if (!report.completed[b]) {
                warn("trainer: batch %zu was quarantined by the "
                     "process tier; recomputing in-process",
                     b);
                std::vector<TrainingSample> ss = run_lane_batch(first,
                                                                count);
                for (size_t i = 0; i < count; ++i)
                    out[first + i] = std::move(ss[i]);
                continue;
            }
            std::vector<std::string> payloads;
            if (!tryUnpackPayloads(report.results[b], &payloads) ||
                payloads.size() != count)
                fatal("trainer: batch %zu payload from the process "
                      "tier does not unpack (journal from an older "
                      "build or a different lane count?); delete the "
                      "journal and re-run",
                      b);
            for (size_t i = 0; i < count; ++i)
                if (!tryDeserializeTrainingSample(payloads[i],
                                                  &out[first + i]))
                    fatal("trainer: batch %zu cell %zu payload from "
                          "the process tier does not deserialize; "
                          "delete the journal and re-run",
                          b, i);
        }
        return out;
    }
    if (config_.workers > 0 && cells > 0) {
        // Process tier: shard the campaign across worker subprocesses
        // (crash isolation + checkpoint/resume). Cells are keyed by
        // grid index and each constructs its own device, so the
        // samples are bit-identical to the in-process paths.
        ProcSweepConfig proc;
        proc.workers = config_.workers;
        std::ostringstream salt;
        salt << "collectSamples " << trainingConfigHash(config_)
             << " cells " << cells;
        for (const auto &w : workloads)
            salt << " " << w.label();
        for (size_t f : freq_indices)
            salt << " " << f;
        proc.campaignHash = hashLabel(salt.str());
        if (!config_.procJournalStem.empty())
            proc.journalPath = config_.procJournalStem + "." +
                hexU64(proc.campaignHash) + ".jrn";

        const ProcSweepReport report = runProcSweep(
            proc, cells, [&](uint64_t cell) {
                ExperimentRunner local(experiment_config);
                return serializeTrainingSample(
                    run_cell(local, static_cast<size_t>(cell)));
            });
        if (report.drained) {
            warn("trainer: campaign interrupted by signal %d with "
                 "%llu cells journaled; re-run to resume",
                 report.drainSignal,
                 static_cast<unsigned long long>(report.unitsRun +
                                                 report.unitsResumed));
            ::raise(report.drainSignal);
            fatal("trainer: campaign interrupted");
        }
        std::vector<TrainingSample> out(cells);
        for (size_t cell = 0; cell < cells; ++cell) {
            if (!report.completed[cell]) {
                warn("trainer: cell %zu was quarantined by the "
                     "process tier; recomputing in-process",
                     cell);
                ExperimentRunner local(experiment_config);
                out[cell] = run_cell(local, cell);
                continue;
            }
            if (!tryDeserializeTrainingSample(report.results[cell],
                                              &out[cell]))
                fatal("trainer: cell %zu payload from the process "
                      "tier does not deserialize (journal from an "
                      "older build?); delete the journal and re-run",
                      cell);
        }
        return out;
    }
    const unsigned jobs =
        config_.jobs ? config_.jobs : defaultJobCount();
    if (lane_tier) {
        // In-process lane tier: batches fanned across the pool (each
        // pool job advances one whole batch), results flattened in
        // grid order.
        std::vector<std::vector<TrainingSample>> per_batch;
        if (jobs <= 1 || batches <= 1) {
            per_batch.reserve(batches);
            for (size_t b = 0; b < batches; ++b)
                per_batch.push_back(run_batch(b));
        } else {
            per_batch = parallelMap<std::vector<TrainingSample>>(
                batches, run_batch, jobs);
        }
        std::vector<TrainingSample> out;
        out.reserve(cells);
        for (auto &batch : per_batch)
            for (auto &s : batch)
                out.push_back(std::move(s));
        return out;
    }
    if (jobs <= 1 || cells <= 1) {
        std::vector<TrainingSample> out;
        out.reserve(cells);
        for (size_t cell = 0; cell < cells; ++cell)
            out.push_back(run_cell(runner_, cell));
        return out;
    }
    const ExperimentConfig experiment = runner_.config();
    return parallelMap<TrainingSample>(
        cells,
        [&](size_t cell) {
            ExperimentRunner local(experiment);
            return run_cell(local, cell);
        },
        jobs);
}

GaussNewtonResult
Trainer::fitLeakage(const std::vector<IdleSample> &samples,
                    double floor_w)
{
    if (samples.size() < 8)
        fatal("Trainer::fitLeakage: need >= 8 idle samples, got %zu",
              samples.size());

    // Six Liao parameters against (idle power - SoC-collapsed floor).
    // The small voltage-dependent uncore clock-tree power remaining in
    // the target is legitimately absorbed by the k2*e^(gamma*v+delta)
    // term.
    auto residual = [&samples, floor_w](const std::vector<double> &p,
                                        size_t i) {
        std::array<double, 6> liao{p[0], p[1], p[2], p[3], p[4], p[5]};
        const LeakageModel model(LeakageParams::fromArray(liao));
        const IdleSample &s = samples[i];
        return (s.powerW - floor_w) - model.power(s.voltage, s.tempC);
    };

    GaussNewtonOptions options;
    options.maxIterations = 400;
    const std::vector<double> initial = {0.30, 0.05, 600.0, -4200.0,
                                         2.5,  -2.5};
    return fitGaussNewton(residual, samples.size(), initial, options);
}

std::vector<std::pair<double, Dataset>>
Trainer::datasetsByBus(const std::vector<TrainingSample> &samples,
                       int target, const LeakageParams *leakage)
{
    std::vector<std::pair<double, Dataset>> groups;
    auto find = [&groups](double bus) -> Dataset & {
        for (auto &g : groups)
            if (g.first == bus)
                return g.second;
        groups.emplace_back(bus, Dataset());
        return groups.back().second;
    };
    for (const auto &s : samples) {
        double y = 0.0;
        switch (target) {
          case 0:
            y = s.loadTimeSec;
            break;
          case 1:
            y = s.meanPowerW;
            break;
          case 2: {
              if (leakage == nullptr)
                  fatal("datasetsByBus: target 2 needs leakage params");
              const LeakageModel model(*leakage);
              y = s.meanPowerW - model.power(s.voltage, s.meanTempC);
              break;
          }
          default:
            fatal("datasetsByBus: unknown target %d", target);
        }
        find(s.busMhz).add(s.x, y);
    }
    return groups;
}

ModelBundle
Trainer::train()
{
    report_ = TrainingReport();
    ModelBundle bundle;

    // Step 1: leakage characterization and fit.
    inform("trainer: idle leakage characterization (%zu ambients)",
           config_.chamberAmbientsC.size());
    const auto idle = runner_.idleCharacterization(
        config_.chamberAmbientsC, 2.0, 0.5,
        config_.jobs ? config_.jobs : defaultJobCount());
    report_.numIdleSamples = idle.size();
    const GaussNewtonResult leak_fit =
        fitLeakage(idle, runner_.socCollapsedFloorW());
    report_.leakageIterations = leak_fit.iterations;
    report_.leakageConverged = leak_fit.converged;
    report_.leakageRmseW = std::sqrt(
        leak_fit.sse / static_cast<double>(idle.size()));
    std::array<double, 6> liao{leak_fit.params[0], leak_fit.params[1],
                               leak_fit.params[2], leak_fit.params[3],
                               leak_fit.params[4], leak_fit.params[5]};
    bundle.leakage = LeakageParams::fromArray(liao);
    bundle.leakageFitted = true;
    inform("trainer: leakage fit rmse %.4f W over %zu samples "
           "(%zu iterations)",
           report_.leakageRmseW, idle.size(), leak_fit.iterations);

    // Step 2: measurement campaign over Webpage-Inclusive workloads.
    auto workloads = WorkloadSets::webpageInclusive();
    if (config_.maxTrainingWorkloads > 0 &&
        workloads.size() > config_.maxTrainingWorkloads)
        workloads.resize(config_.maxTrainingWorkloads);
    inform("trainer: measuring %zu workloads x %zu frequencies",
           workloads.size(), config_.trainingFreqIndices.size());
    samples_ = collectSamples(workloads, config_.trainingFreqIndices);
    report_.numMeasurements = samples_.size();

    // Step 3: piece-wise surface fits.
    double time_err_sum = 0.0, power_err_sum = 0.0;
    size_t time_n = 0, power_n = 0;
    for (const auto &[bus, data] : datasetsByBus(samples_, 0)) {
        if (!bundle.timeModel.fitGroup(bus, data, config_.timeRidge))
            fatal("trainer: singular time fit for bus %g MHz", bus);
        const FitMetrics m = bundle.timeModel.groupFor(bus).evaluate(data);
        time_err_sum += m.meanAbsPctError * static_cast<double>(m.count);
        time_n += m.count;
    }
    for (const auto &[bus, data] :
         datasetsByBus(samples_, 2, &bundle.leakage)) {
        if (!bundle.powerModel.fitGroup(bus, data, config_.powerRidge))
            fatal("trainer: singular power fit for bus %g MHz", bus);
    }
    // Training error of the *total* power prediction (surface plus
    // recomposed leakage) — the quantity DORA actually uses.
    for (const auto &s : samples_) {
        const double pred = bundle.predictTotalPower(
            s.x, s.busMhz, s.voltage, s.meanTempC);
        power_err_sum += std::abs(pred - s.meanPowerW) /
            std::max(1e-9, s.meanPowerW);
        ++power_n;
    }
    report_.timeTrainMeanPctErr =
        time_n ? time_err_sum / static_cast<double>(time_n) : 0.0;
    report_.powerTrainMeanPctErr =
        power_n ? power_err_sum / static_cast<double>(power_n) : 0.0;
    inform("trainer: time fit mean err %.2f%%, power (non-leakage) fit "
           "mean err %.2f%% over %zu measurements",
           100.0 * report_.timeTrainMeanPctErr,
           100.0 * report_.powerTrainMeanPctErr,
           report_.numMeasurements);
    bundle.configHash = trainingConfigHash(config_);
    return bundle;
}

ModelBundle
Trainer::trainCached(const std::string &path)
{
    const uint64_t want_hash = trainingConfigHash(config_);
    ModelBundle cached = ModelBundle::tryLoad(path);
    if (cached.ready()) {
        if (cached.configHash == want_hash) {
            inform("trainer: loaded cached models from %s",
                   path.c_str());
            return cached;
        }
        inform("trainer: %s was trained under a different configuration "
               "(hash %llx != %llx); retraining",
               path.c_str(),
               static_cast<unsigned long long>(cached.configHash),
               static_cast<unsigned long long>(want_hash));
    }
    ModelBundle fresh = train();
    std::string why;
    if (!fresh.validate(&why))
        warn("trainer: freshly trained bundle failed validation (%s); "
             "downstream governors will degrade to their fallback",
             why.c_str());
    if (fresh.save(path))
        inform("trainer: cached models to %s", path.c_str());
    return fresh;
}

} // namespace dora
