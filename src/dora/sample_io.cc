#include "dora/sample_io.hh"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "dora/features.hh"

namespace dora
{

namespace
{

constexpr std::string_view kSampleTag = "tsmp";
constexpr uint32_t kSampleVersion = 1;

} // namespace

std::string
serializeTrainingSample(const TrainingSample &s)
{
    SnapshotWriter w;
    w.beginSection(kSampleTag, kSampleVersion);
    w.putDoubles(s.x);
    w.putDouble(s.busMhz);
    w.putDouble(s.voltage);
    w.putDouble(s.loadTimeSec);
    w.putDouble(s.meanPowerW);
    w.putDouble(s.meanTempC);
    return w.finish();
}

bool
tryDeserializeTrainingSample(std::string_view bytes, TrainingSample *out)
{
    SnapshotReader r(bytes);
    if (!r.checksumOk() || !r.beginSection(kSampleTag, kSampleVersion))
        return false;
    TrainingSample s;
    if (!r.getDoubles(&s.x) || !r.getDouble(&s.busMhz) ||
        !r.getDouble(&s.voltage) || !r.getDouble(&s.loadTimeSec) ||
        !r.getDouble(&s.meanPowerW) || !r.getDouble(&s.meanTempC) ||
        !r.atEnd())
        return false;
    *out = std::move(s);
    return true;
}

std::string
samplesToCsv(const std::vector<TrainingSample> &samples)
{
    std::ostringstream out;
    out.precision(17);
    for (const auto &name : featureNames())
        out << name << ",";
    out << "bus_mhz,voltage,load_time_s,mean_power_w,mean_temp_c\n";
    for (const auto &s : samples) {
        if (s.x.size() != kNumFeatures)
            fatal("samplesToCsv: sample with %zu features", s.x.size());
        for (double v : s.x)
            out << v << ",";
        out << s.busMhz << "," << s.voltage << "," << s.loadTimeSec
            << "," << s.meanPowerW << "," << s.meanTempC << "\n";
    }
    return out.str();
}

std::vector<TrainingSample>
samplesFromCsv(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        fatal("samplesFromCsv: empty input");

    const size_t expected_cols = kNumFeatures + 5;
    std::vector<TrainingSample> samples;
    size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::vector<double> cols;
        std::string cell;
        while (std::getline(row, cell, ','))
            cols.push_back(std::stod(cell));
        if (cols.size() != expected_cols)
            fatal("samplesFromCsv: line %zu has %zu columns, expected "
                  "%zu", line_no, cols.size(), expected_cols);
        TrainingSample s;
        s.x.assign(cols.begin(),
                   cols.begin() + static_cast<long>(kNumFeatures));
        s.busMhz = cols[kNumFeatures + 0];
        s.voltage = cols[kNumFeatures + 1];
        s.loadTimeSec = cols[kNumFeatures + 2];
        s.meanPowerW = cols[kNumFeatures + 3];
        s.meanTempC = cols[kNumFeatures + 4];
        samples.push_back(std::move(s));
    }
    return samples;
}

bool
saveSamples(const std::vector<TrainingSample> &samples,
            const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("saveSamples: cannot open %s", path.c_str());
        return false;
    }
    out << samplesToCsv(samples);
    return static_cast<bool>(out);
}

std::vector<TrainingSample>
loadSamples(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return samplesFromCsv(buf.str());
}

} // namespace dora
