/**
 * @file
 * The trained-model bundle DORA carries at runtime: the piece-wise
 * interaction surface for web-page load time, the piece-wise linear
 * surface for non-leakage device power, and the fitted Liao leakage
 * parameters (plus the idle constant absorbed during the leakage fit).
 *
 * predictTotalPower() recomposes total device power as
 *   surface(X) + Liao(v, T)
 * where the surface was trained on (measured power - fitted leakage),
 * so leakage's temperature dependence stays explicit — that is what
 * lets DORA react to die temperature (Section V-F / Fig. 10).
 */

#ifndef DORA_DORA_MODEL_BUNDLE_HH
#define DORA_DORA_MODEL_BUNDLE_HH

#include <string>

#include "model/piecewise.hh"
#include "power/leakage.hh"

namespace dora
{

/**
 * Serializable container for DORA's trained predictors.
 */
struct ModelBundle
{
    /** Bump when the on-disk format or training semantics change. */
    static constexpr int kFormatVersion = 4;

    PiecewiseSurface timeModel;   //!< load time (s) ~ X (interaction)
    PiecewiseSurface powerModel;  //!< non-leakage power (W) ~ X (linear)
    LeakageParams leakage;        //!< fitted Liao parameters
    bool leakageFitted = false;

    ModelBundle();

    /** True when both surfaces trained. */
    bool ready() const;

    /** Predicted whole-page load time (s) at feature vector @p x. */
    double predictLoadTime(const std::vector<double> &x,
                           double bus_mhz) const;

    /**
     * Predicted total device power (W).
     * @param include_leakage false reproduces the DORA_no_lkg ablation
     *        (decision from the non-leakage component only)
     */
    double predictTotalPower(const std::vector<double> &x, double bus_mhz,
                             double voltage, double temp_c,
                             bool include_leakage = true) const;

    /** Leakage power (W) under the fitted parameters. */
    double fittedLeakage(double voltage, double temp_c) const;

    /** Serialize to a version-stamped text blob. */
    std::string serialize() const;

    /** Parse a blob; fatal() on malformed/mismatched version. */
    static ModelBundle deserialize(const std::string &text);

    /** Write to @p path; warns and returns false on failure. */
    bool save(const std::string &path) const;

    /**
     * Load from @p path. Returns empty optional-like flag via ready():
     * returns a default bundle (not ready()) when the file is missing
     * or has a stale version.
     */
    static ModelBundle tryLoad(const std::string &path);
};

} // namespace dora

#endif // DORA_DORA_MODEL_BUNDLE_HH
