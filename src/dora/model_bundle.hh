/**
 * @file
 * The trained-model bundle DORA carries at runtime: the piece-wise
 * interaction surface for web-page load time, the piece-wise linear
 * surface for non-leakage device power, and the fitted Liao leakage
 * parameters (plus the idle constant absorbed during the leakage fit).
 *
 * predictTotalPower() recomposes total device power as
 *   surface(X) + Liao(v, T)
 * where the surface was trained on (measured power - fitted leakage),
 * so leakage's temperature dependence stays explicit — that is what
 * lets DORA react to die temperature (Section V-F / Fig. 10).
 */

#ifndef DORA_DORA_MODEL_BUNDLE_HH
#define DORA_DORA_MODEL_BUNDLE_HH

#include <string>

#include "model/piecewise.hh"
#include "power/leakage.hh"

namespace dora
{

/**
 * Serializable container for DORA's trained predictors.
 */
struct ModelBundle
{
    /** Bump when the on-disk format or training semantics change. */
    static constexpr int kFormatVersion = 5;

    PiecewiseSurface timeModel;   //!< load time (s) ~ X (interaction)
    PiecewiseSurface powerModel;  //!< non-leakage power (W) ~ X (linear)
    LeakageParams leakage;        //!< fitted Liao parameters
    bool leakageFitted = false;

    /**
     * Hash of the training configuration that produced the bundle
     * (trainingConfigHash() in trainer.hh). Part of the cache key: a
     * cache file trained under a different configuration is retrained,
     * not silently reused. Zero for ad-hoc bundles built in tests.
     */
    uint64_t configHash = 0;

    ModelBundle();

    /** True when both surfaces trained. */
    bool ready() const;

    /** Predicted whole-page load time (s) at feature vector @p x. */
    double predictLoadTime(const std::vector<double> &x,
                           double bus_mhz) const;

    /**
     * Predicted total device power (W).
     * @param include_leakage false reproduces the DORA_no_lkg ablation
     *        (decision from the non-leakage component only)
     */
    double predictTotalPower(const std::vector<double> &x, double bus_mhz,
                             double voltage, double temp_c,
                             bool include_leakage = true) const;

    /** Leakage power (W) under the fitted parameters. */
    double fittedLeakage(double voltage, double temp_c) const;

    /**
     * Deep validation: every surface parameter and leakage parameter
     * finite, both surfaces trained. @return false with @p why set on
     * the first failed check. A bundle that fails validation must not
     * be used for decisions (retrain instead).
     */
    bool validate(std::string *why = nullptr) const;

    /** Serialize to a version-stamped text blob. */
    std::string serialize() const;

    /**
     * Parse a blob. Never aborts: a malformed, truncated, stale, or
     * non-finite blob yields a default (not ready()) bundle with
     * @p diagnostic describing the rejection, and the caller retrains.
     */
    static ModelBundle deserialize(const std::string &text,
                                   std::string *diagnostic = nullptr);

    /** Write to @p path; warns and returns false on failure. */
    bool save(const std::string &path) const;

    /**
     * Load from @p path. Returns empty optional-like flag via ready():
     * returns a default bundle (not ready()) when the file is missing,
     * has a stale version, or fails deserialize() validation (a
     * warning names the reason — the caller is expected to retrain).
     */
    static ModelBundle tryLoad(const std::string &path);
};

} // namespace dora

#endif // DORA_DORA_MODEL_BUNDLE_HH
