/**
 * @file
 * The model-predictive governors: DORA itself (Algorithm 1 of the
 * paper) and the two hypothetical comparison policies built from the
 * same predictors (Section V-C):
 *
 *   DORA — among OPPs whose predicted load time meets the QoS target,
 *          pick the one maximizing predicted PPW = 1/(time x power);
 *          if none meets the target, run flat out (QoS priority).
 *   DL   — Deadline: the lowest OPP whose predicted load time meets
 *          the target, disregarding energy; flat out if none.
 *   EE   — Energy Efficient: the OPP maximizing predicted PPW,
 *          disregarding the deadline entirely.
 *
 * All three re-evaluate every decision interval with fresh runtime
 * signals (L2 MPKI, co-runner utilization, die temperature), which is
 * what makes them interference-aware.
 */

#ifndef DORA_DORA_PREDICTIVE_GOVERNOR_HH
#define DORA_DORA_PREDICTIVE_GOVERNOR_HH

#include <memory>

#include "dora/model_bundle.hh"
#include "governor/governor.hh"

namespace dora
{

/** Policy variants sharing the predictive machinery. */
enum class PredictiveMode
{
    Dora,          //!< Algorithm 1
    DeadlineOnly,  //!< DL
    EnergyOnly     //!< EE
};

/** Options for a predictive governor. */
struct PredictiveConfig
{
    PredictiveMode mode = PredictiveMode::Dora;
    double decisionIntervalSec = 0.1;  //!< paper Section IV-C
    bool includeLeakage = true;        //!< false = DORA_no_lkg ablation
};

/** One row of the frequency-exploration loop (for introspection). */
struct CandidateEval
{
    size_t freqIndex = 0;
    double predLoadTimeSec = 0.0;
    double predPowerW = 0.0;
    double predPpw = 0.0;
    bool meetsDeadline = false;
};

/**
 * DORA / DL / EE governor over a trained ModelBundle.
 */
class PredictiveGovernor : public Governor
{
  public:
    /**
     * @param models  trained bundle (shared; must outlive the governor)
     * @param config  policy variant and tunables
     */
    PredictiveGovernor(std::shared_ptr<const ModelBundle> models,
                       const PredictiveConfig &config = {});

    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override
    {
        return config_.decisionIntervalSec;
    }
    size_t decideFrequencyIndex(const GovernorView &view) override;
    void reset() override;

    /**
     * The per-OPP evaluation table from the most recent decision
     * (empty before the first page-context decision). Exposed for the
     * fig06/fig11 benches and tests.
     */
    const std::vector<CandidateEval> &lastEvaluation() const
    {
        return lastEval_;
    }

    const PredictiveConfig &config() const { return config_; }

    /**
     * Stateless core of Algorithm 1: evaluate every OPP and pick the
     * winner for @p mode. Exposed for unit tests.
     */
    static size_t selectFrequency(const std::vector<CandidateEval> &evals,
                                  PredictiveMode mode, size_t max_index);

  private:
    std::shared_ptr<const ModelBundle> models_;
    PredictiveConfig config_;
    std::string name_;
    std::vector<CandidateEval> lastEval_;
    /** Utilization-tracking fallback for page-less intervals. */
    InteractiveGovernor idleFallback_;
};

/** Convenience factories matching the paper's governor names. */
PredictiveGovernor makeDora(std::shared_ptr<const ModelBundle> models,
                            double interval_sec = 0.1);
PredictiveGovernor makeDl(std::shared_ptr<const ModelBundle> models);
PredictiveGovernor makeEe(std::shared_ptr<const ModelBundle> models);
PredictiveGovernor makeDoraNoLeakage(
    std::shared_ptr<const ModelBundle> models);

} // namespace dora

#endif // DORA_DORA_PREDICTIVE_GOVERNOR_HH
