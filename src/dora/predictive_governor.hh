/**
 * @file
 * The model-predictive governors: DORA itself (Algorithm 1 of the
 * paper) and the two hypothetical comparison policies built from the
 * same predictors (Section V-C):
 *
 *   DORA — among OPPs whose predicted load time meets the QoS target,
 *          pick the one maximizing predicted PPW = 1/(time x power);
 *          if none meets the target, run flat out (QoS priority).
 *   DL   — Deadline: the lowest OPP whose predicted load time meets
 *          the target, disregarding energy; flat out if none.
 *   EE   — Energy Efficient: the OPP maximizing predicted PPW,
 *          disregarding the deadline entirely.
 *
 * All three re-evaluate every decision interval with fresh runtime
 * signals (L2 MPKI, co-runner utilization, die temperature), which is
 * what makes them interference-aware.
 */

#ifndef DORA_DORA_PREDICTIVE_GOVERNOR_HH
#define DORA_DORA_PREDICTIVE_GOVERNOR_HH

#include <memory>

#include "dora/model_bundle.hh"
#include "governor/governor.hh"

namespace dora
{

/** Policy variants sharing the predictive machinery. */
enum class PredictiveMode
{
    Dora,          //!< Algorithm 1
    DeadlineOnly,  //!< DL
    EnergyOnly     //!< EE
};

/** Options for a predictive governor. */
struct PredictiveConfig
{
    PredictiveMode mode = PredictiveMode::Dora;
    double decisionIntervalSec = 0.1;  //!< paper Section IV-C
    bool includeLeakage = true;        //!< false = DORA_no_lkg ablation
    /**
     * Consecutive unusable decision intervals (non-finite signals or no
     * valid candidate evaluation) tolerated while holding the last good
     * OPP; one more and the governor degrades to the embedded
     * interactive fallback until signals recover.
     */
    size_t fallbackAfterBadIntervals = 5;
};

/** One row of the frequency-exploration loop (for introspection). */
struct CandidateEval
{
    size_t freqIndex = 0;
    double predLoadTimeSec = 0.0;
    double predPowerW = 0.0;
    double predPpw = 0.0;
    bool meetsDeadline = false;
};

/**
 * DORA / DL / EE governor over a trained ModelBundle.
 */
class PredictiveGovernor : public Governor
{
  public:
    /**
     * @param models  trained bundle (shared; must outlive the governor)
     * @param config  policy variant and tunables
     */
    PredictiveGovernor(std::shared_ptr<const ModelBundle> models,
                       const PredictiveConfig &config = {});

    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override
    {
        return config_.decisionIntervalSec;
    }
    size_t decideFrequencyIndex(const GovernorView &view) override;
    void reset() override;

    /**
     * Serialize degradation tracking and the embedded fallback. The
     * candidate table (lastEval_) is an output record recomputed at
     * every decision and is deliberately excluded.
     */
    void snapshot(SnapshotWriter &w) const override;
    [[nodiscard]] bool tryRestore(SnapshotReader &r) override;

    /**
     * The per-OPP evaluation table from the most recent decision
     * (empty before the first page-context decision). Exposed for the
     * fig06/fig11 benches and tests.
     */
    const std::vector<CandidateEval> &lastEvaluation() const
    {
        return lastEval_;
    }

    const PredictiveConfig &config() const { return config_; }

    /**
     * True while decisions are not coming from the predictive models:
     * either the bundle was unusable at construction, or the bad-input
     * streak has crossed fallbackAfterBadIntervals.
     */
    bool degraded() const
    {
        return !modelsUsable_ ||
               badStreak_ >= config_.fallbackAfterBadIntervals;
    }

    /** Consecutive bad intervals ending at the latest decision. */
    size_t badStreak() const { return badStreak_; }

    /** Total unusable decision intervals since construction/reset. */
    uint64_t badIntervals() const { return badIntervals_; }

    /**
     * Stateless core of Algorithm 1: evaluate every OPP and pick the
     * winner for @p mode. Exposed for unit tests.
     */
    static size_t selectFrequency(const std::vector<CandidateEval> &evals,
                                  PredictiveMode mode, size_t max_index);

  private:
    // Usability is verified on restore via modelsUsable_.
    // dora:snapshot-exclude(construction identity)
    std::shared_ptr<const ModelBundle> models_;
    PredictiveConfig config_;  // dora:snapshot-exclude(construction config)
    std::string name_;  // dora:snapshot-exclude(construction identity)
    // dora:snapshot-exclude(bench/debug surface; cleared on restore)
    std::vector<CandidateEval> lastEval_;
    /**
     * Utilization-tracking fallback for page-less intervals, and the
     * degraded-mode policy when the models become unusable.
     */
    InteractiveGovernor idleFallback_;

    /** False when construction saw a null or untrained bundle. */
    bool modelsUsable_ = true;
    size_t badStreak_ = 0;
    uint64_t badIntervals_ = 0;
    bool haveLastGood_ = false;
    size_t lastGoodIndex_ = 0;
    bool warnedBadInterval_ = false;
};

/** Convenience factories matching the paper's governor names. */
PredictiveGovernor makeDora(std::shared_ptr<const ModelBundle> models,
                            double interval_sec = 0.1);
PredictiveGovernor makeDl(std::shared_ptr<const ModelBundle> models);
PredictiveGovernor makeEe(std::shared_ptr<const ModelBundle> models);
PredictiveGovernor makeDoraNoLeakage(
    std::shared_ptr<const ModelBundle> models);

} // namespace dora

#endif // DORA_DORA_PREDICTIVE_GOVERNOR_HH
