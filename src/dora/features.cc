#include "dora/features.hh"

namespace dora
{

const std::vector<std::string> &
featureNames()
{
    static const std::vector<std::string> names = {
        "dom_nodes",     // X1
        "class_attrs",   // X2
        "href_attrs",    // X3
        "a_tags",        // X4
        "div_tags",      // X5
        "l2_mpki",       // X6
        "core_mhz",      // X7
        "bus_mhz",       // X8
        "corun_util",    // X9
    };
    return names;
}

std::vector<double>
buildFeatureVector(const WebPageFeatures &page, double l2_mpki,
                   double core_mhz, double bus_mhz, double corun_util)
{
    return {
        page.domNodes, page.classAttrs, page.hrefAttrs,
        page.aTags,    page.divTags,    l2_mpki,
        core_mhz,      bus_mhz,         corun_util,
    };
}

} // namespace dora
