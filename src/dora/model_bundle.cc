#include "dora/model_bundle.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "dora/features.hh"
#include "power/leakage.hh"

namespace dora
{

ModelBundle::ModelBundle()
    : timeModel(SurfaceKind::Interaction, kNumFeatures),
      powerModel(SurfaceKind::Linear, kNumFeatures)
{
}

bool
ModelBundle::ready() const
{
    return timeModel.trained() && powerModel.trained();
}

double
ModelBundle::predictLoadTime(const std::vector<double> &x,
                             double bus_mhz) const
{
    const double raw = timeModel.predict(x, bus_mhz);
    // Propagate non-finite predictions (corrupt inputs or corrupt
    // coefficients) so the governor's sanity checks can see them —
    // std::max(1e-3, NaN) would silently mask the fault.
    if (!std::isfinite(raw))
        return raw;
    // A regression surface can dip non-physical at the edges of the
    // training envelope; clamp to a millisecond floor.
    return std::max(1e-3, raw);
}

double
ModelBundle::fittedLeakage(double voltage, double temp_c) const
{
    if (!leakageFitted)
        return 0.0;
    return LeakageModel(leakage).power(voltage, temp_c);
}

double
ModelBundle::predictTotalPower(const std::vector<double> &x,
                               double bus_mhz, double voltage,
                               double temp_c, bool include_leakage) const
{
    const double surface = powerModel.predict(x, bus_mhz);
    const double leak =
        include_leakage ? fittedLeakage(voltage, temp_c) : 0.0;
    const double raw = surface + leak;
    if (!std::isfinite(raw))
        return raw;
    return std::max(1e-3, raw);
}

bool
ModelBundle::validate(std::string *why) const
{
    auto fail = [why](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (!timeModel.trained())
        return fail("time model untrained");
    if (!powerModel.trained())
        return fail("power model untrained");
    if (!timeModel.allFinite())
        return fail("time model has non-finite parameters");
    if (!powerModel.allFinite())
        return fail("power model has non-finite parameters");
    for (double p : leakage.toArray())
        if (!std::isfinite(p))
            return fail("leakage parameters non-finite");
    return true;
}

std::string
ModelBundle::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "dora-model-bundle " << kFormatVersion << "\n";
    out << "config-hash " << configHash << "\n";
    out << "leakage " << (leakageFitted ? 1 : 0);
    for (double p : leakage.toArray())
        out << " " << p;
    out << "\n";
    out << timeModel.serialize();
    out << powerModel.serialize();
    return out.str();
}

ModelBundle
ModelBundle::deserialize(const std::string &text,
                         std::string *diagnostic)
{
    auto fail = [diagnostic](const std::string &why) {
        if (diagnostic)
            *diagnostic = why;
        return ModelBundle();
    };

    std::istringstream in(text);
    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (tag != "dora-model-bundle" || !in)
        return fail("bad magic");
    if (version != kFormatVersion) {
        std::ostringstream why;
        why << "version " << version << " != " << kFormatVersion;
        return fail(why.str());
    }

    ModelBundle bundle;
    uint64_t config_hash = 0;
    in >> tag >> config_hash;
    if (tag != "config-hash" || !in)
        return fail("missing config-hash line");
    bundle.configHash = config_hash;

    int fitted = 0;
    in >> tag >> fitted;
    if (tag != "leakage" || !in)
        return fail("missing leakage line");
    std::array<double, 6> params{};
    for (double &p : params) {
        in >> p;
        if (!in)
            return fail("truncated leakage parameters");
        if (!std::isfinite(p))
            return fail("non-finite leakage parameter");
    }
    bundle.leakage = LeakageParams::fromArray(params);
    bundle.leakageFitted = fitted != 0;
    std::string line;
    std::getline(in, line);  // end of leakage line

    // The rest of the stream is two piecewise blocks; split on the
    // second "piecewise" header.
    std::string rest, second;
    bool in_second = false;
    while (std::getline(in, line)) {
        if (line.rfind("piecewise ", 0) == 0 && !rest.empty())
            in_second = true;
        (in_second ? second : rest) += line + "\n";
    }
    std::string why;
    if (!PiecewiseSurface::tryDeserialize(rest, &bundle.timeModel, &why))
        return fail("time model: " + why);
    if (!PiecewiseSurface::tryDeserialize(second, &bundle.powerModel,
                                          &why))
        return fail("power model: " + why);
    if (!bundle.validate(&why))
        return fail(why);
    return bundle;
}

bool
ModelBundle::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("ModelBundle::save: cannot open %s", path.c_str());
        return false;
    }
    out << serialize();
    return static_cast<bool>(out);
}

ModelBundle
ModelBundle::tryLoad(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ModelBundle();
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // Cheap version gate before committing to a full parse.
    std::istringstream head(text);
    std::string tag;
    int version = 0;
    head >> tag >> version;
    if (tag != "dora-model-bundle" || version != kFormatVersion) {
        inform("ModelBundle: %s is stale (version %d); retraining",
               path.c_str(), version);
        return ModelBundle();
    }
    std::string why;
    ModelBundle bundle = deserialize(text, &why);
    if (!bundle.ready())
        warn("ModelBundle: rejecting %s (%s); retraining", path.c_str(),
             why.c_str());
    return bundle;
}

} // namespace dora
