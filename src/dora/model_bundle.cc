#include "dora/model_bundle.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "dora/features.hh"
#include "power/leakage.hh"

namespace dora
{

ModelBundle::ModelBundle()
    : timeModel(SurfaceKind::Interaction, kNumFeatures),
      powerModel(SurfaceKind::Linear, kNumFeatures)
{
}

bool
ModelBundle::ready() const
{
    return timeModel.trained() && powerModel.trained();
}

double
ModelBundle::predictLoadTime(const std::vector<double> &x,
                             double bus_mhz) const
{
    // A regression surface can dip non-physical at the edges of the
    // training envelope; clamp to a millisecond floor.
    return std::max(1e-3, timeModel.predict(x, bus_mhz));
}

double
ModelBundle::fittedLeakage(double voltage, double temp_c) const
{
    if (!leakageFitted)
        return 0.0;
    return LeakageModel(leakage).power(voltage, temp_c);
}

double
ModelBundle::predictTotalPower(const std::vector<double> &x,
                               double bus_mhz, double voltage,
                               double temp_c, bool include_leakage) const
{
    const double surface = powerModel.predict(x, bus_mhz);
    const double leak =
        include_leakage ? fittedLeakage(voltage, temp_c) : 0.0;
    return std::max(1e-3, surface + leak);
}

std::string
ModelBundle::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "dora-model-bundle " << kFormatVersion << "\n";
    out << "leakage " << (leakageFitted ? 1 : 0);
    for (double p : leakage.toArray())
        out << " " << p;
    out << "\n";
    out << timeModel.serialize();
    out << powerModel.serialize();
    return out.str();
}

ModelBundle
ModelBundle::deserialize(const std::string &text)
{
    std::istringstream in(text);
    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (tag != "dora-model-bundle")
        fatal("ModelBundle::deserialize: bad magic");
    if (version != kFormatVersion)
        fatal("ModelBundle::deserialize: version %d != %d", version,
              kFormatVersion);

    ModelBundle bundle;
    int fitted = 0;
    in >> tag >> fitted;
    if (tag != "leakage")
        fatal("ModelBundle::deserialize: expected 'leakage'");
    std::array<double, 6> params{};
    for (double &p : params)
        in >> p;
    bundle.leakage = LeakageParams::fromArray(params);
    bundle.leakageFitted = fitted != 0;
    std::string line;
    std::getline(in, line);  // end of leakage line

    // The rest of the stream is two piecewise blocks; split on the
    // second "piecewise" header.
    std::string rest, second;
    bool in_second = false;
    while (std::getline(in, line)) {
        if (line.rfind("piecewise ", 0) == 0 && !rest.empty())
            in_second = true;
        (in_second ? second : rest) += line + "\n";
    }
    bundle.timeModel = PiecewiseSurface::deserialize(rest);
    bundle.powerModel = PiecewiseSurface::deserialize(second);
    return bundle;
}

bool
ModelBundle::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("ModelBundle::save: cannot open %s", path.c_str());
        return false;
    }
    out << serialize();
    return static_cast<bool>(out);
}

ModelBundle
ModelBundle::tryLoad(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return ModelBundle();
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // Cheap version gate before committing to a full parse.
    std::istringstream head(text);
    std::string tag;
    int version = 0;
    head >> tag >> version;
    if (tag != "dora-model-bundle" || version != kFormatVersion) {
        inform("ModelBundle: %s is stale (version %d); retraining",
               path.c_str(), version);
        return ModelBundle();
    }
    return deserialize(text);
}

} // namespace dora
