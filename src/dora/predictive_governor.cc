#include "dora/predictive_governor.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"
#include "dora/features.hh"

namespace dora
{

namespace
{

std::string
modeName(const PredictiveConfig &config)
{
    switch (config.mode) {
      case PredictiveMode::Dora:
        return config.includeLeakage ? "DORA" : "DORA_no_lkg";
      case PredictiveMode::DeadlineOnly:
        return "DL";
      case PredictiveMode::EnergyOnly:
        return "EE";
    }
    return "?";
}

} // namespace

PredictiveGovernor::PredictiveGovernor(
    std::shared_ptr<const ModelBundle> models,
    const PredictiveConfig &config)
    : models_(std::move(models)), config_(config),
      name_(modeName(config))
{
    // Degrade rather than die: a missing or untrained bundle (e.g. a
    // rejected cache file the caller chose not to retrain) leaves a
    // working governor whose every decision comes from the embedded
    // interactive fallback.
    if (!models_ || !models_->ready()) {
        warn("PredictiveGovernor '%s': %s model bundle; running "
             "degraded on the interactive fallback",
             name_.c_str(), !models_ ? "null" : "untrained");
        modelsUsable_ = false;
    }
}

void
PredictiveGovernor::reset()
{
    idleFallback_.reset();
    lastEval_.clear();
    badStreak_ = 0;
    badIntervals_ = 0;
    haveLastGood_ = false;
    lastGoodIndex_ = 0;
    warnedBadInterval_ = false;
}

void
PredictiveGovernor::snapshot(SnapshotWriter &w) const
{
    w.beginSection("govp", 1);
    // Construction-derived, not run state: verified on restore.
    w.putBool(modelsUsable_);
    w.putSize(badStreak_);
    w.putU64(badIntervals_);
    w.putBool(haveLastGood_);
    w.putSize(lastGoodIndex_);
    w.putBool(warnedBadInterval_);
    idleFallback_.snapshot(w);
}

bool
PredictiveGovernor::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("govp", 1))
        return false;
    bool models_usable, have_last_good, warned;
    size_t bad_streak, last_good_index;
    uint64_t bad_intervals;
    if (!r.getBool(&models_usable) || models_usable != modelsUsable_ ||
        !r.getSize(&bad_streak) || !r.getU64(&bad_intervals) ||
        !r.getBool(&have_last_good) || !r.getSize(&last_good_index) ||
        !r.getBool(&warned) || !idleFallback_.tryRestore(r))
        return false;
    badStreak_ = bad_streak;
    badIntervals_ = bad_intervals;
    haveLastGood_ = have_last_good;
    lastGoodIndex_ = last_good_index;
    warnedBadInterval_ = warned;
    lastEval_.clear();
    return true;
}

size_t
PredictiveGovernor::decideFrequencyIndex(const GovernorView &view)
{
    const FreqTable &table = *view.freqTable;
    if (view.page == nullptr) {
        // No page in flight: nothing to predict for. Track utilization
        // like the stock governor so background work (and the die
        // temperature entering the next load) matches how a deployed
        // daemon behaves between page loads.
        return idleFallback_.decideFrequencyIndex(view);
    }
    if (!modelsUsable_)
        return idleFallback_.decideFrequencyIndex(view);

    // Faulted sensors can hand the models non-finite signals; features
    // built from them would poison every candidate, so treat the whole
    // interval as unusable up front.
    const bool inputs_ok = std::isfinite(view.l2Mpki) &&
                           std::isfinite(view.corunUtilization) &&
                           std::isfinite(view.temperatureC) &&
                           std::isfinite(view.deadlineSec) &&
                           view.deadlineSec > 0.0;

    lastEval_.clear();
    if (inputs_ok) {
        // Algorithm 1: explore every frequency setting with the
        // current runtime signals plugged into the models. Candidates
        // whose predictions are non-finite or non-positive (corrupt
        // coefficients, envelope blow-ups) are dropped rather than
        // allowed to win on a bogus PPW.
        lastEval_.reserve(table.size());
        for (size_t f = 0; f < table.size(); ++f) {
            const OperatingPoint &opp = table.opp(f);
            const auto x = buildFeatureVector(
                *view.page, view.l2Mpki, opp.coreMhz, opp.busMhz,
                view.corunUtilization);

            CandidateEval eval;
            eval.freqIndex = f;
            eval.predLoadTimeSec =
                models_->predictLoadTime(x, opp.busMhz);
            eval.predPowerW = models_->predictTotalPower(
                x, opp.busMhz, opp.voltage, view.temperatureC,
                config_.includeLeakage);
            const bool valid =
                std::isfinite(eval.predLoadTimeSec) &&
                eval.predLoadTimeSec > 0.0 &&
                std::isfinite(eval.predPowerW) && eval.predPowerW > 0.0;
            if (!valid)
                continue;
            eval.predPpw =
                1.0 / (eval.predLoadTimeSec * eval.predPowerW);
            eval.meetsDeadline =
                eval.predLoadTimeSec <= view.deadlineSec;
            lastEval_.push_back(eval);
        }
    }

    if (!inputs_ok || lastEval_.empty()) {
        ++badStreak_;
        ++badIntervals_;
        if (!warnedBadInterval_) {
            warn("PredictiveGovernor '%s': unusable decision interval "
                 "(%s); holding last good OPP",
                 name_.c_str(),
                 inputs_ok ? "no valid candidate evaluation"
                           : "non-finite runtime signals");
            warnedBadInterval_ = true;
        }
        if (badStreak_ >= config_.fallbackAfterBadIntervals)
            return idleFallback_.decideFrequencyIndex(view);
        // Hold last good; before any good decision, fail safe to the
        // top OPP (QoS priority, same as Algorithm 1's miss branch).
        return haveLastGood_ ? lastGoodIndex_ : table.maxIndex();
    }

    badStreak_ = 0;
    const size_t chosen =
        selectFrequency(lastEval_, config_.mode, table.maxIndex());
    lastGoodIndex_ = chosen;
    haveLastGood_ = true;
    return chosen;
}

size_t
PredictiveGovernor::selectFrequency(
    const std::vector<CandidateEval> &evals, PredictiveMode mode,
    size_t max_index)
{
    if (evals.empty())
        return max_index;

    switch (mode) {
      case PredictiveMode::Dora: {
          double best_ppw = 0.0;
          size_t best = max_index;  // QoS priority when nothing meets
          bool any = false;
          for (const auto &e : evals) {
              if (!e.meetsDeadline)
                  continue;
              if (!any || e.predPpw > best_ppw) {
                  best_ppw = e.predPpw;
                  best = e.freqIndex;
                  any = true;
              }
          }
          return best;
      }
      case PredictiveMode::DeadlineOnly: {
          // Lowest OPP predicted to meet the deadline (fD).
          for (const auto &e : evals)
              if (e.meetsDeadline)
                  return e.freqIndex;
          return max_index;
      }
      case PredictiveMode::EnergyOnly: {
          // Global PPW maximum, deadline-oblivious (fE).
          double best_ppw = 0.0;
          size_t best = evals.front().freqIndex;
          for (const auto &e : evals) {
              if (e.predPpw > best_ppw) {
                  best_ppw = e.predPpw;
                  best = e.freqIndex;
              }
          }
          return best;
      }
    }
    return max_index;
}

PredictiveGovernor
makeDora(std::shared_ptr<const ModelBundle> models, double interval_sec)
{
    PredictiveConfig config;
    config.mode = PredictiveMode::Dora;
    config.decisionIntervalSec = interval_sec;
    return PredictiveGovernor(std::move(models), config);
}

PredictiveGovernor
makeDl(std::shared_ptr<const ModelBundle> models)
{
    PredictiveConfig config;
    config.mode = PredictiveMode::DeadlineOnly;
    return PredictiveGovernor(std::move(models), config);
}

PredictiveGovernor
makeEe(std::shared_ptr<const ModelBundle> models)
{
    PredictiveConfig config;
    config.mode = PredictiveMode::EnergyOnly;
    return PredictiveGovernor(std::move(models), config);
}

PredictiveGovernor
makeDoraNoLeakage(std::shared_ptr<const ModelBundle> models)
{
    PredictiveConfig config;
    config.mode = PredictiveMode::Dora;
    config.includeLeakage = false;
    return PredictiveGovernor(std::move(models), config);
}

} // namespace dora
