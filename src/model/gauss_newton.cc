#include "model/gauss_newton.hh"

#include <cmath>

#include "common/logging.hh"
#include "model/linalg.hh"

namespace dora
{

namespace
{

double
sumSquares(const std::function<double(const std::vector<double> &,
                                      size_t)> &residual,
           const std::vector<double> &params, size_t n)
{
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double r = residual(params, i);
        sse += r * r;
    }
    return sse;
}

} // namespace

GaussNewtonResult
fitGaussNewton(const std::function<double(const std::vector<double> &,
                                          size_t)> &residual,
               size_t num_residuals, std::vector<double> initial,
               const GaussNewtonOptions &options)
{
    const size_t p = initial.size();
    if (p == 0 || num_residuals < p)
        fatal("fitGaussNewton: %zu residuals for %zu parameters",
              num_residuals, p);

    GaussNewtonResult result;
    result.params = std::move(initial);
    result.sse = sumSquares(residual, result.params, num_residuals);
    double lambda = options.initialLambda;

    for (size_t iter = 0; iter < options.maxIterations; ++iter) {
        result.iterations = iter + 1;

        // Jacobian by central differences and residual vector.
        Matrix jac(num_residuals, p);
        std::vector<double> res(num_residuals);
        for (size_t i = 0; i < num_residuals; ++i)
            res[i] = residual(result.params, i);
        for (size_t j = 0; j < p; ++j) {
            const double h = options.finiteDiffStep *
                std::max(1.0, std::abs(result.params[j]));
            std::vector<double> plus = result.params;
            std::vector<double> minus = result.params;
            plus[j] += h;
            minus[j] -= h;
            for (size_t i = 0; i < num_residuals; ++i)
                jac.at(i, j) =
                    (residual(plus, i) - residual(minus, i)) / (2.0 * h);
        }

        // Solve (J^T J + lambda diag(J^T J)) step = -J^T r.
        Matrix gram = jac.gram();
        std::vector<double> jtr = jac.transposeTimes(res);
        for (double &v : jtr)
            v = -v;

        bool improved = false;
        for (int attempt = 0; attempt < 8 && !improved; ++attempt) {
            Matrix damped = gram;
            for (size_t d = 0; d < p; ++d)
                damped.at(d, d) +=
                    lambda * std::max(1e-12, gram.at(d, d));
            std::vector<double> step;
            if (solveLinearSystem(damped, jtr, step)) {
                std::vector<double> trial = result.params;
                for (size_t j = 0; j < p; ++j)
                    trial[j] += step[j];
                const double trial_sse =
                    sumSquares(residual, trial, num_residuals);
                if (trial_sse < result.sse) {
                    const double rel =
                        (result.sse - trial_sse) /
                        std::max(result.sse, 1e-300);
                    result.params = std::move(trial);
                    result.sse = trial_sse;
                    lambda *= options.lambdaShrink;
                    improved = true;
                    if (rel < options.tolerance) {
                        result.converged = true;
                        return result;
                    }
                    break;
                }
            }
            lambda *= options.lambdaGrow;
        }
        if (!improved) {
            // No descent direction found at any damping: local optimum.
            result.converged = true;
            return result;
        }
    }
    return result;
}

} // namespace dora
