#include "model/response_surface.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace dora
{

const char *
surfaceKindName(SurfaceKind kind)
{
    switch (kind) {
      case SurfaceKind::Linear:
        return "linear";
      case SurfaceKind::Quadratic:
        return "quadratic";
      case SurfaceKind::Interaction:
        return "interaction";
    }
    return "?";
}

void
Dataset::add(std::vector<double> features, double target)
{
    if (!x.empty() && features.size() != x.front().size())
        panic("Dataset::add: dimension mismatch (%zu vs %zu)",
              features.size(), x.front().size());
    x.push_back(std::move(features));
    y.push_back(target);
}

ResponseSurface::ResponseSurface(SurfaceKind kind, size_t dims)
    : kind_(kind), dims_(dims)
{
    if (dims == 0)
        fatal("ResponseSurface: zero input dimension");
}

size_t
ResponseSurface::termCount() const
{
    const size_t n = dims_;
    switch (kind_) {
      case SurfaceKind::Linear:
        return 1 + n;
      case SurfaceKind::Interaction:
        return 1 + n + n * (n - 1) / 2;
      case SurfaceKind::Quadratic:
        return 1 + n + n * (n + 1) / 2;
    }
    return 0;
}

std::vector<double>
ResponseSurface::standardize(const std::vector<double> &raw) const
{
    if (raw.size() != dims_)
        panic("ResponseSurface: feature vector has %zu dims, expected %zu",
              raw.size(), dims_);
    std::vector<double> z(dims_);
    for (size_t i = 0; i < dims_; ++i)
        z[i] = (raw[i] - means_[i]) / sds_[i];
    return z;
}

std::vector<double>
ResponseSurface::expand(const std::vector<double> &z) const
{
    std::vector<double> terms;
    terms.reserve(termCount());
    terms.push_back(1.0);
    for (double v : z)
        terms.push_back(v);
    if (kind_ == SurfaceKind::Interaction) {
        for (size_t i = 0; i < dims_; ++i)
            for (size_t j = i + 1; j < dims_; ++j)
                terms.push_back(z[i] * z[j]);
    } else if (kind_ == SurfaceKind::Quadratic) {
        for (size_t i = 0; i < dims_; ++i)
            for (size_t j = i; j < dims_; ++j)
                terms.push_back(z[i] * z[j]);
    }
    return terms;
}

bool
ResponseSurface::fit(const Dataset &data, double ridge)
{
    if (data.size() == 0 || data.dims() != dims_)
        fatal("ResponseSurface::fit: empty data or dimension mismatch");

    // Standardization parameters from the training data.
    means_.assign(dims_, 0.0);
    sds_.assign(dims_, 0.0);
    for (const auto &row : data.x)
        for (size_t i = 0; i < dims_; ++i)
            means_[i] += row[i];
    for (double &m : means_)
        m /= static_cast<double>(data.size());
    for (const auto &row : data.x)
        for (size_t i = 0; i < dims_; ++i) {
            const double d = row[i] - means_[i];
            sds_[i] += d * d;
        }
    for (double &s : sds_) {
        s = std::sqrt(s / static_cast<double>(data.size()));
        if (s < 1e-12)
            s = 1.0;  // constant column; z-score collapses to 0
    }

    Matrix design(data.size(), termCount());
    for (size_t r = 0; r < data.size(); ++r) {
        const auto terms = expand(standardize(data.x[r]));
        for (size_t c = 0; c < terms.size(); ++c)
            design.at(r, c) = terms[c];
    }

    coeffs_ = solveLeastSquares(design, data.y, ridge);
    trained_ = !coeffs_.empty();
    return trained_;
}

double
ResponseSurface::predict(const std::vector<double> &features) const
{
    if (!trained_)
        panic("ResponseSurface::predict before successful fit");
    const auto terms = expand(standardize(features));
    double out = 0.0;
    for (size_t i = 0; i < terms.size(); ++i)
        out += coeffs_[i] * terms[i];
    return out;
}

std::vector<double>
ResponseSurface::absPctErrors(const Dataset &data) const
{
    std::vector<double> errors;
    errors.reserve(data.size());
    for (size_t r = 0; r < data.size(); ++r) {
        const double pred = predict(data.x[r]);
        const double denom = std::max(1e-12, std::abs(data.y[r]));
        errors.push_back(std::abs(pred - data.y[r]) / denom);
    }
    return errors;
}

FitMetrics
ResponseSurface::evaluate(const Dataset &data) const
{
    FitMetrics m;
    m.count = data.size();
    if (data.size() == 0)
        return m;
    double sq = 0.0;
    for (size_t r = 0; r < data.size(); ++r) {
        const double pred = predict(data.x[r]);
        const double err = pred - data.y[r];
        sq += err * err;
        const double pct =
            std::abs(err) / std::max(1e-12, std::abs(data.y[r]));
        m.meanAbsPctError += pct;
        m.maxAbsPctError = std::max(m.maxAbsPctError, pct);
    }
    m.meanAbsPctError /= static_cast<double>(data.size());
    m.rmse = std::sqrt(sq / static_cast<double>(data.size()));
    return m;
}

std::string
ResponseSurface::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "surface " << surfaceKindName(kind_) << " " << dims_ << " "
        << (trained_ ? 1 : 0) << "\n";
    auto emit = [&out](const std::vector<double> &v, const char *tag) {
        out << tag;
        for (double x : v)
            out << " " << x;
        out << "\n";
    };
    emit(means_, "means");
    emit(sds_, "sds");
    emit(coeffs_, "coeffs");
    return out.str();
}

ResponseSurface
ResponseSurface::deserialize(const std::string &text)
{
    // Placeholder dims; tryDeserialize overwrites the whole object.
    ResponseSurface s(SurfaceKind::Linear, 1);
    std::string why;
    if (!tryDeserialize(text, &s, &why))
        fatal("ResponseSurface::deserialize: %s", why.c_str());
    return s;
}

bool
ResponseSurface::tryDeserialize(const std::string &text,
                                ResponseSurface *out, std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::istringstream in(text);
    std::string tag, kind_name;
    size_t dims = 0;
    int trained = 0;
    in >> tag >> kind_name >> dims >> trained;
    if (tag != "surface" || !in)
        return fail("bad surface header");
    // A corrupted dims field must not drive a huge allocation below.
    if (dims == 0 || dims > kMaxSerializedDims)
        return fail("implausible surface dimension count");

    SurfaceKind kind;
    if (kind_name == "linear")
        kind = SurfaceKind::Linear;
    else if (kind_name == "quadratic")
        kind = SurfaceKind::Quadratic;
    else if (kind_name == "interaction")
        kind = SurfaceKind::Interaction;
    else
        return fail("unknown surface kind '" + kind_name + "'");

    ResponseSurface s(kind, dims);
    bool ok = true;
    auto read_vec = [&in, &ok](const char *expect, size_t n) {
        std::vector<double> v;
        std::string t;
        in >> t;
        if (t != expect) {
            ok = false;
            return v;
        }
        v.resize(n);
        for (double &x : v)
            in >> x;
        if (!in)
            ok = false;
        return v;
    };
    s.means_ = read_vec("means", dims);
    s.sds_ = read_vec("sds", dims);
    s.coeffs_ = read_vec("coeffs", trained ? s.termCount() : 0);
    s.trained_ = trained != 0;
    if (!ok)
        return fail("truncated or mislabeled surface body");
    if (!s.allFinite())
        return fail("non-finite surface parameters");
    *out = std::move(s);
    return true;
}

bool
ResponseSurface::allFinite() const
{
    auto finite = [](const std::vector<double> &v) {
        for (double x : v)
            if (!std::isfinite(x))
                return false;
        return true;
    };
    return finite(means_) && finite(sds_) && finite(coeffs_);
}

} // namespace dora
