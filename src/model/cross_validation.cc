#include "model/cross_validation.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace dora
{

CvResult
crossValidate(SurfaceKind kind, const Dataset &data, size_t k,
              double ridge, uint64_t seed)
{
    const size_t n = data.size();
    if (n < 4)
        fatal("crossValidate: need at least 4 samples, got %zu", n);
    k = std::clamp<size_t>(k, 2, n);

    // Deterministic Fisher-Yates shuffle of the sample indices.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    for (size_t i = n - 1; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);

    CvResult result;
    result.folds = k;
    double err_sum = 0.0;
    size_t err_n = 0;
    for (size_t fold = 0; fold < k; ++fold) {
        Dataset train, test;
        for (size_t i = 0; i < n; ++i) {
            const size_t idx = order[i];
            if (i % k == fold)
                test.add(data.x[idx], data.y[idx]);
            else
                train.add(data.x[idx], data.y[idx]);
        }
        ResponseSurface surface(kind, data.dims());
        if (!surface.fit(train, ridge)) {
            warn("crossValidate: singular fit in fold %zu", fold);
            continue;
        }
        for (const double e : surface.absPctErrors(test)) {
            err_sum += e;
            result.maxAbsPctError = std::max(result.maxAbsPctError, e);
            ++err_n;
        }
    }
    result.samples = err_n;
    result.meanAbsPctError =
        err_n ? err_sum / static_cast<double>(err_n) : 0.0;
    return result;
}

std::pair<double, CvResult>
selectRidgeByCv(SurfaceKind kind, const Dataset &data, size_t k,
                const std::vector<double> &ridges, uint64_t seed)
{
    if (ridges.empty())
        fatal("selectRidgeByCv: empty ridge candidate list");
    double best_ridge = ridges.front();
    CvResult best;
    bool first = true;
    for (double ridge : ridges) {
        const CvResult r = crossValidate(kind, data, k, ridge, seed);
        if (first || r.meanAbsPctError < best.meanAbsPctError) {
            best = r;
            best_ridge = ridge;
            first = false;
        }
    }
    return {best_ridge, best};
}

} // namespace dora
