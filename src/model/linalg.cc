#include "model/linalg.hh"

#include <cmath>

#include "common/logging.hh"

namespace dora
{

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

double &
Matrix::at(size_t r, size_t c)
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu,%zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(size_t r, size_t c) const
{
    if (r >= rows_ || c >= cols_)
        panic("Matrix::at(%zu,%zu) out of %zux%zu", r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::gram() const
{
    Matrix g(cols_, cols_);
    for (size_t i = 0; i < cols_; ++i) {
        for (size_t j = i; j < cols_; ++j) {
            double sum = 0.0;
            for (size_t r = 0; r < rows_; ++r)
                sum += at(r, i) * at(r, j);
            g.at(i, j) = sum;
            g.at(j, i) = sum;
        }
    }
    return g;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &v) const
{
    if (v.size() != rows_)
        panic("Matrix::transposeTimes: size mismatch");
    std::vector<double> out(cols_, 0.0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out[c] += at(r, c) * v[r];
    return out;
}

std::vector<double>
Matrix::times(const std::vector<double> &v) const
{
    if (v.size() != cols_)
        panic("Matrix::times: size mismatch");
    std::vector<double> out(rows_, 0.0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out[r] += at(r, c) * v[c];
    return out;
}

bool
solveLinearSystem(Matrix a, std::vector<double> b, std::vector<double> &x)
{
    const size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        panic("solveLinearSystem: non-square or mismatched system");

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        double best = std::abs(a.at(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            const double v = std::abs(a.at(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-14)
            return false;
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a.at(col, c), a.at(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) / a.at(col, col);
            if (factor == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a.at(r, c) -= factor * a.at(col, c);
            b[r] -= factor * b[col];
        }
    }

    // Back substitution.
    x.assign(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double sum = b[ri];
        for (size_t c = ri + 1; c < n; ++c)
            sum -= a.at(ri, c) * x[c];
        x[ri] = sum / a.at(ri, ri);
    }
    return true;
}

std::vector<double>
solveLeastSquares(const Matrix &x, const std::vector<double> &y,
                  double ridge)
{
    if (y.size() != x.rows())
        fatal("solveLeastSquares: %zu rows vs %zu targets", x.rows(),
              y.size());
    if (x.rows() < x.cols())
        warn("solveLeastSquares: underdetermined (%zu rows, %zu cols)",
             x.rows(), x.cols());

    Matrix gram = x.gram();
    for (size_t i = 0; i < gram.rows(); ++i)
        gram.at(i, i) += ridge;
    const std::vector<double> xty = x.transposeTimes(y);

    std::vector<double> coeffs;
    if (!solveLinearSystem(gram, xty, coeffs)) {
        warn("solveLeastSquares: singular normal equations");
        return {};
    }
    return coeffs;
}

} // namespace dora
