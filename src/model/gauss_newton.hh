/**
 * @file
 * Damped Gauss-Newton (Levenberg-Marquardt) solver for small non-linear
 * least-squares problems.
 *
 * The paper determines the six Liao leakage parameters "using non-linear
 * numerical solutions and mean square error minimization" (Section
 * III-B); this is that solver. Jacobians are taken by central finite
 * differences, which is plenty for a 6-parameter fit over a few dozen
 * (voltage, temperature, power) observations.
 */

#ifndef DORA_MODEL_GAUSS_NEWTON_HH
#define DORA_MODEL_GAUSS_NEWTON_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace dora
{

/** Options for the Levenberg-Marquardt iteration. */
struct GaussNewtonOptions
{
    size_t maxIterations = 200;
    double initialLambda = 1e-3;      //!< LM damping start
    double lambdaGrow = 10.0;
    double lambdaShrink = 0.3;
    double tolerance = 1e-12;         //!< relative SSE improvement stop
    double finiteDiffStep = 1e-6;     //!< relative parameter step
};

/** Outcome of a fit. */
struct GaussNewtonResult
{
    std::vector<double> params;
    double sse = 0.0;         //!< final sum of squared residuals
    size_t iterations = 0;
    bool converged = false;
};

/**
 * Minimize sum_i residual(params, i)^2 over @p num_residuals residuals.
 *
 * @param residual  callback returning the i-th residual at params
 * @param initial   starting parameter vector
 */
GaussNewtonResult
fitGaussNewton(const std::function<double(const std::vector<double> &,
                                          size_t)> &residual,
               size_t num_residuals, std::vector<double> initial,
               const GaussNewtonOptions &options = {});

} // namespace dora

#endif // DORA_MODEL_GAUSS_NEWTON_HH
