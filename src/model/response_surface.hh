/**
 * @file
 * Response-surface regression models — the paper's Equations (2)-(4).
 *
 * Three hypothesized forms over N independent variables X1..XN:
 *   Linear       (Eq. 2): c0 + sum ci*Xi
 *   Quadratic    (Eq. 3): linear + sum over i<=j of cij*Xi*Xj
 *   Interaction  (Eq. 4): linear + sum over i<j  of cij*Xi*Xj
 *
 * Inputs are standardized (z-scored) before term expansion so the
 * normal equations stay well-conditioned across the very different
 * feature magnitudes (DOM node counts vs MPKI vs GHz). The paper picks
 * the interaction surface for load time and the linear surface for
 * power (Section V-A); all three are implemented and compared by the
 * fig05 bench.
 */

#ifndef DORA_MODEL_RESPONSE_SURFACE_HH
#define DORA_MODEL_RESPONSE_SURFACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "model/linalg.hh"

namespace dora
{

/** The three response surfaces of the paper. */
enum class SurfaceKind
{
    Linear,
    Quadratic,
    Interaction
};

/** Human-readable name. */
const char *surfaceKindName(SurfaceKind kind);

/** A training/evaluation set: rows of features plus targets. */
struct Dataset
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;

    /** Append one observation; all rows must share a dimension. */
    void add(std::vector<double> features, double target);

    size_t size() const { return y.size(); }
    size_t dims() const { return x.empty() ? 0 : x.front().size(); }
};

/** Fit-quality summary on a dataset. */
struct FitMetrics
{
    double meanAbsPctError = 0.0;  //!< mean |pred-y|/|y|
    double maxAbsPctError = 0.0;
    double rmse = 0.0;
    size_t count = 0;
};

/**
 * One fitted response surface.
 */
class ResponseSurface
{
  public:
    /** Untrained surface of the given kind over @p dims inputs. */
    ResponseSurface(SurfaceKind kind, size_t dims);

    /**
     * Fit by ridge-regularized least squares. @return false if the
     * system was singular (surface left untrained).
     */
    bool fit(const Dataset &data, double ridge = 1e-9);

    /** Predict the response at @p features. Requires trained(). */
    double predict(const std::vector<double> &features) const;

    /** True once fit() has succeeded. */
    bool trained() const { return trained_; }

    /** Error metrics of the trained surface over @p data. */
    FitMetrics evaluate(const Dataset &data) const;

    /** Per-sample absolute relative errors over @p data. */
    std::vector<double> absPctErrors(const Dataset &data) const;

    SurfaceKind kind() const { return kind_; }
    size_t dims() const { return dims_; }

    /** Number of expanded terms (including the intercept). */
    size_t termCount() const;

    /** Raw coefficients (term order: intercept, linear, products). */
    const std::vector<double> &coefficients() const { return coeffs_; }

    /** True when means, sds, and coefficients are all finite. */
    bool allFinite() const;

    /** Serialize to a text block (see ModelBundle). */
    std::string serialize() const;

    /** Deserialize; fatal() on malformed input. */
    static ResponseSurface deserialize(const std::string &text);

    /**
     * Non-aborting deserialize for untrusted input (the on-disk model
     * cache): validates the header, rejects truncated bodies and
     * non-finite parameters. @return false (with @p error set) on any
     * malformation; @p out is written only on success.
     */
    static bool tryDeserialize(const std::string &text,
                               ResponseSurface *out,
                               std::string *error = nullptr);

    /** Sanity cap on serialized dimension counts (corruption guard). */
    static constexpr size_t kMaxSerializedDims = 64;

  private:
    std::vector<double> standardize(const std::vector<double> &raw) const;
    std::vector<double> expand(const std::vector<double> &z) const;

    SurfaceKind kind_;
    size_t dims_;
    bool trained_ = false;
    std::vector<double> means_;
    std::vector<double> sds_;
    std::vector<double> coeffs_;
};

} // namespace dora

#endif // DORA_MODEL_RESPONSE_SURFACE_HH
