/**
 * @file
 * Piece-wise response surfaces keyed by memory-bus frequency.
 *
 * Section III-A of the paper: "on a typical SoC, a set of core
 * frequencies map to a particular memory bus frequency. Therefore, we
 * build piece-wise models for each set of core frequencies that share
 * a single memory bus frequency." Each bus-frequency group gets its
 * own surface; prediction routes to the group of the queried OPP.
 */

#ifndef DORA_MODEL_PIECEWISE_HH
#define DORA_MODEL_PIECEWISE_HH

#include <string>
#include <vector>

#include "model/response_surface.hh"

namespace dora
{

/**
 * A family of ResponseSurfaces, one per memory-bus frequency.
 */
class PiecewiseSurface
{
  public:
    /** Family of @p kind surfaces over @p dims inputs. */
    PiecewiseSurface(SurfaceKind kind, size_t dims);

    /**
     * Fit the group for @p bus_mhz from @p data (replaces any previous
     * fit for the same key). @return false on singular fit.
     */
    bool fitGroup(double bus_mhz, const Dataset &data,
                  double ridge = 1e-9);

    /**
     * Predict at @p features using the group whose bus frequency is
     * nearest @p bus_mhz. Requires at least one trained group.
     */
    double predict(const std::vector<double> &features,
                   double bus_mhz) const;

    /** True if every added group trained successfully and >=1 exists. */
    bool trained() const;

    /** Bus keys in insertion order. */
    std::vector<double> groupKeys() const;

    /** The surface for the group nearest @p bus_mhz. */
    const ResponseSurface &groupFor(double bus_mhz) const;

    SurfaceKind kind() const { return kind_; }
    size_t dims() const { return dims_; }

    /** True when every group's surface parameters are finite. */
    bool allFinite() const;

    /** Serialize/deserialize for the model bundle file. */
    std::string serialize() const;
    static PiecewiseSurface deserialize(const std::string &text);

    /**
     * Non-aborting deserialize for untrusted input: rejects malformed
     * headers, truncated group blocks, and non-finite parameters.
     * @return false (with @p error set) on failure; @p out is written
     * only on success.
     */
    static bool tryDeserialize(const std::string &text,
                               PiecewiseSurface *out,
                               std::string *error = nullptr);

    /** Sanity cap on serialized group counts (corruption guard). */
    static constexpr size_t kMaxSerializedGroups = 64;

  private:
    size_t nearestGroup(double bus_mhz) const;

    SurfaceKind kind_;
    size_t dims_;
    std::vector<double> keys_;
    std::vector<ResponseSurface> surfaces_;
};

} // namespace dora

#endif // DORA_MODEL_PIECEWISE_HH
