/**
 * @file
 * K-fold cross-validation for response surfaces.
 *
 * The held-out-page evaluation of the paper (Webpage-Neutral workloads)
 * is a single fixed split; cross-validation generalizes it and is how
 * the ridge strengths in TrainerConfig were chosen. Folds are formed
 * by a deterministic shuffle so results are reproducible.
 */

#ifndef DORA_MODEL_CROSS_VALIDATION_HH
#define DORA_MODEL_CROSS_VALIDATION_HH

#include <cstddef>

#include "model/response_surface.hh"

namespace dora
{

/** Aggregate result of one cross-validation run. */
struct CvResult
{
    double meanAbsPctError = 0.0;  //!< mean over all held-out samples
    double maxAbsPctError = 0.0;
    size_t folds = 0;
    size_t samples = 0;
};

/**
 * K-fold cross-validation of a surface kind over a dataset.
 *
 * @param kind   response surface to evaluate
 * @param data   full dataset (split deterministically by @p seed)
 * @param k      number of folds (clamped to [2, data.size()])
 * @param ridge  ridge strength used for every fold's fit
 * @param seed   shuffle seed
 */
CvResult crossValidate(SurfaceKind kind, const Dataset &data, size_t k,
                       double ridge, uint64_t seed = 1);

/**
 * Sweep ridge strengths and return the one minimizing CV error.
 *
 * @param ridges  candidate strengths (non-empty)
 * @return pair of (best ridge, its CvResult)
 */
std::pair<double, CvResult>
selectRidgeByCv(SurfaceKind kind, const Dataset &data, size_t k,
                const std::vector<double> &ridges, uint64_t seed = 1);

} // namespace dora

#endif // DORA_MODEL_CROSS_VALIDATION_HH
