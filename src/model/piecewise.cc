#include "model/piecewise.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace dora
{

PiecewiseSurface::PiecewiseSurface(SurfaceKind kind, size_t dims)
    : kind_(kind), dims_(dims)
{
}

bool
PiecewiseSurface::fitGroup(double bus_mhz, const Dataset &data,
                           double ridge)
{
    for (size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == bus_mhz) {
            ResponseSurface s(kind_, dims_);
            const bool ok = s.fit(data, ridge);
            surfaces_[i] = std::move(s);
            return ok;
        }
    }
    ResponseSurface s(kind_, dims_);
    const bool ok = s.fit(data, ridge);
    keys_.push_back(bus_mhz);
    surfaces_.push_back(std::move(s));
    return ok;
}

size_t
PiecewiseSurface::nearestGroup(double bus_mhz) const
{
    if (keys_.empty())
        panic("PiecewiseSurface: no trained groups");
    size_t best = 0;
    double best_dist = std::abs(keys_[0] - bus_mhz);
    for (size_t i = 1; i < keys_.size(); ++i) {
        const double d = std::abs(keys_[i] - bus_mhz);
        if (d < best_dist) {
            best_dist = d;
            best = i;
        }
    }
    return best;
}

double
PiecewiseSurface::predict(const std::vector<double> &features,
                          double bus_mhz) const
{
    return surfaces_[nearestGroup(bus_mhz)].predict(features);
}

bool
PiecewiseSurface::trained() const
{
    if (surfaces_.empty())
        return false;
    for (const auto &s : surfaces_)
        if (!s.trained())
            return false;
    return true;
}

std::vector<double>
PiecewiseSurface::groupKeys() const
{
    return keys_;
}

const ResponseSurface &
PiecewiseSurface::groupFor(double bus_mhz) const
{
    return surfaces_[nearestGroup(bus_mhz)];
}

std::string
PiecewiseSurface::serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "piecewise " << surfaceKindName(kind_) << " " << dims_ << " "
        << keys_.size() << "\n";
    for (size_t i = 0; i < keys_.size(); ++i) {
        out << "group " << keys_[i] << "\n";
        out << surfaces_[i].serialize();
    }
    return out.str();
}

PiecewiseSurface
PiecewiseSurface::deserialize(const std::string &text)
{
    PiecewiseSurface pw(SurfaceKind::Linear, 0);
    std::string why;
    if (!tryDeserialize(text, &pw, &why))
        fatal("PiecewiseSurface::deserialize: %s", why.c_str());
    return pw;
}

bool
PiecewiseSurface::tryDeserialize(const std::string &text,
                                 PiecewiseSurface *out,
                                 std::string *error)
{
    auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    std::istringstream in(text);
    std::string tag, kind_name;
    size_t dims = 0, groups = 0;
    in >> tag >> kind_name >> dims >> groups;
    if (tag != "piecewise" || !in)
        return fail("bad piecewise header");
    if (dims == 0 || dims > ResponseSurface::kMaxSerializedDims)
        return fail("implausible piecewise dimension count");
    if (groups == 0 || groups > kMaxSerializedGroups)
        return fail("implausible piecewise group count");

    SurfaceKind kind;
    if (kind_name == "linear")
        kind = SurfaceKind::Linear;
    else if (kind_name == "quadratic")
        kind = SurfaceKind::Quadratic;
    else if (kind_name == "interaction")
        kind = SurfaceKind::Interaction;
    else
        return fail("unknown piecewise kind '" + kind_name + "'");

    PiecewiseSurface pw(kind, dims);
    std::string line;
    std::getline(in, line);  // consume end of header line
    for (size_t g = 0; g < groups; ++g) {
        if (!std::getline(in, line))
            return fail("missing group header");
        std::istringstream group_header(line);
        std::string group_tag;
        double bus = 0.0;
        group_header >> group_tag >> bus;
        if (group_tag != "group" || !group_header ||
            !std::isfinite(bus))
            return fail("malformed group header");
        // A surface block is exactly 4 lines (header + 3 vectors).
        std::string block;
        for (int i = 0; i < 4; ++i) {
            if (!std::getline(in, line))
                return fail("truncated surface block");
            block += line + "\n";
        }
        ResponseSurface s(kind, dims);
        std::string why;
        if (!ResponseSurface::tryDeserialize(block, &s, &why))
            return fail(why);
        pw.keys_.push_back(bus);
        pw.surfaces_.push_back(std::move(s));
    }
    *out = std::move(pw);
    return true;
}

bool
PiecewiseSurface::allFinite() const
{
    for (const auto &s : surfaces_)
        if (!s.allFinite())
            return false;
    return true;
}

} // namespace dora
