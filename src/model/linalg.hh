/**
 * @file
 * Minimal dense linear algebra for the regression machinery: a
 * row-major matrix, normal-equation assembly, and a pivoted Gaussian
 * solver. Sized for design matrices of a few hundred rows by a few
 * dozen columns — no BLAS needed.
 */

#ifndef DORA_MODEL_LINALG_HH
#define DORA_MODEL_LINALG_HH

#include <cstddef>
#include <vector>

namespace dora
{

/**
 * Dense row-major matrix of doubles.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols, zero-initialized. */
    Matrix(size_t rows, size_t cols);

    double &at(size_t r, size_t c);
    double at(size_t r, size_t c) const;

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** this^T * this (Gram matrix). */
    Matrix gram() const;

    /** this^T * v. Requires v.size() == rows(). */
    std::vector<double> transposeTimes(const std::vector<double> &v) const;

    /** this * v. Requires v.size() == cols(). */
    std::vector<double> times(const std::vector<double> &v) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve the square system A x = b in place via Gaussian elimination
 * with partial pivoting. @return false if A is singular to working
 * precision (x is then unspecified).
 */
bool solveLinearSystem(Matrix a, std::vector<double> b,
                       std::vector<double> &x);

/**
 * Ridge-regularized least squares: minimize |X c - y|^2 + ridge*|c|^2
 * via the normal equations. The tiny default ridge only guards against
 * rank deficiency from collinear design columns.
 *
 * @return coefficient vector of size X.cols(); fatal() on dimension
 *         mismatch, returns empty on singularity.
 */
std::vector<double> solveLeastSquares(const Matrix &x,
                                      const std::vector<double> &y,
                                      double ridge = 1e-9);

} // namespace dora

#endif // DORA_MODEL_LINALG_HH
