#include "power/dynamic_power.hh"

namespace dora
{

DynamicPowerModel::DynamicPowerModel(const DynamicPowerConfig &config)
    : config_(config)
{
}

double
DynamicPowerModel::corePower(const SocTickSummary &s) const
{
    const double v2 = s.voltage * s.voltage;
    const double f_hz = s.coreMhz * 1e6;
    double power = 0.0;
    for (const auto &core : s.perCore) {
        const double activity =
            config_.idleActivity + core.effectiveActivity;
        power += config_.coreCeff * activity * v2 * f_hz;
    }
    // Uncore clock tree at the bus clock (always on while SoC is up).
    power += config_.uncoreCeff * v2 * s.busMhz * 1e6;
    return power;
}

double
DynamicPowerModel::l2TrafficEnergyJ(double l2_accesses) const
{
    return l2_accesses * config_.l2AccessEnergyJ;
}

} // namespace dora
