/**
 * @file
 * Dynamic (switching) power of the application cores and the uncore.
 *
 * Per-core switching power follows the classic CMOS form
 * P = C_eff * a * V^2 * f, where a is the task's switching-activity
 * factor scaled by the core's busy fraction. The uncore term covers the
 * shared L2 and interconnect and scales with L2 access traffic and the
 * bus clock.
 */

#ifndef DORA_POWER_DYNAMIC_POWER_HH
#define DORA_POWER_DYNAMIC_POWER_HH

#include "soc/soc.hh"

namespace dora
{

/** Capacitance-like coefficients of the dynamic power model. */
struct DynamicPowerConfig
{
    /** Effective switched capacitance per core (farads). */
    double coreCeff = 0.65e-9;

    /** Idle (clock-tree) activity floor when a core is clocked. */
    double idleActivity = 0.04;

    /** Energy per scaled L2 access (joules); covers L2 + interconnect. */
    double l2AccessEnergyJ = 0.6e-9;

    /** Uncore clock-tree capacitance term (farads, at bus clock). */
    double uncoreCeff = 0.25e-9;
};

/**
 * Evaluates dynamic power for one tick from the SoC tick summary.
 */
class DynamicPowerModel
{
  public:
    explicit DynamicPowerModel(const DynamicPowerConfig &config);

    /**
     * Core-rail dynamic power (W) over the tick summarized by @p s.
     * Includes per-core switching plus the uncore clock tree.
     */
    double corePower(const SocTickSummary &s) const;

    /**
     * Uncore traffic energy (J) for @p l2_accesses scaled L2 lookups.
     */
    double l2TrafficEnergyJ(double l2_accesses) const;

    const DynamicPowerConfig &config() const { return config_; }

  private:
    DynamicPowerConfig config_;
};

} // namespace dora

#endif // DORA_POWER_DYNAMIC_POWER_HH
