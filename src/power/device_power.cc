#include "power/device_power.hh"

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

DevicePower::DevicePower(const DevicePowerConfig &config,
                         const LeakageModel &leakage_truth)
    : config_(config), dynamic_(config.dynamic), leakage_(leakage_truth),
      thermal_(config.thermal)
{
}

PowerBreakdown
DevicePower::step(const SocTickSummary &summary, double dt_sec)
{
    if (dt_sec <= 0.0)
        panic("DevicePower::step: non-positive dt");

    PowerBreakdown brk;
    brk.baseline = config_.baselineW;
    brk.coreDynamic = dynamic_.corePower(summary);

    double l2_accesses = 0.0;
    for (const auto &core : summary.perCore)
        l2_accesses += core.l2Accesses;
    brk.l2Traffic = dynamic_.l2TrafficEnergyJ(l2_accesses) / dt_sec;

    brk.dram = summary.dramEnergyJ / dt_sec;
    brk.leakage = leakage_.power(summary.voltage,
                                 thermal_.temperatureC());
    brk.dvfsSwitch = summary.switchEnergyJ / dt_sec;

    lastPower_ = brk.total();
    totalEnergyJ_ += lastPower_ * dt_sec;
    totalSeconds_ += dt_sec;

    // Only on-die heat drives the junction temperature.
    const double soc_heat = brk.coreDynamic + brk.l2Traffic + brk.leakage;
    thermal_.step(soc_heat, dt_sec);
    return brk;
}

double
DevicePower::meanPowerW() const
{
    return totalSeconds_ > 0.0 ? totalEnergyJ_ / totalSeconds_ : 0.0;
}

void
DevicePower::reset()
{
    lastPower_ = 0.0;
    totalEnergyJ_ = 0.0;
    totalSeconds_ = 0.0;
    thermal_.reset();
}

void
DevicePower::snapshot(SnapshotWriter &w) const
{
    w.beginSection("dpow", 1);
    w.putDouble(lastPower_);
    w.putDouble(totalEnergyJ_);
    w.putDouble(totalSeconds_);
    thermal_.snapshot(w);
}

bool
DevicePower::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("dpow", 1))
        return false;
    double last_power, total_energy, total_seconds;
    if (!r.getDouble(&last_power) || !r.getDouble(&total_energy) ||
        !r.getDouble(&total_seconds) || !thermal_.tryRestore(r))
        return false;
    lastPower_ = last_power;
    totalEnergyJ_ = total_energy;
    totalSeconds_ = total_seconds;
    return true;
}

void
PowerTrace::push(double t_sec, double power_w, double temp_c)
{
    samples_.push_back(Sample{t_sec, power_w, temp_c});
}

double
PowerTrace::meanPowerW() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &s : samples_)
        sum += s.powerW;
    return sum / static_cast<double>(samples_.size());
}

} // namespace dora
