#include "power/thermal.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

ThermalModel::ThermalModel(const ThermalConfig &config)
    : config_(config), tempC_(config.initialC)
{
    if (config.thermalResistance <= 0.0 || config.heatCapacity <= 0.0)
        fatal("ThermalModel: non-positive R or C");
}

void
ThermalModel::step(double soc_power_w, double dt_sec)
{
    if (dt_sec <= 0.0)
        panic("ThermalModel::step: non-positive dt");
    // Exact integration of the linear ODE over the tick (unconditionally
    // stable even if dt ever exceeds the RC time constant).
    const double t_inf = steadyStateC(soc_power_w);
    const double tau = config_.thermalResistance * config_.heatCapacity;
    tempC_ = t_inf + (tempC_ - t_inf) * std::exp(-dt_sec / tau);
    // Hardware thermal limit (see ThermalConfig::maxJunctionC).
    tempC_ = std::min(tempC_, config_.maxJunctionC);
}

double
ThermalModel::steadyStateC(double soc_power_w) const
{
    return config_.ambientC + soc_power_w * config_.thermalResistance;
}

void
ThermalModel::setAmbientC(double ambient_c)
{
    config_.ambientC = ambient_c;
}

void
ThermalModel::reset()
{
    tempC_ = config_.initialC;
}

void
ThermalModel::snapshot(SnapshotWriter &w) const
{
    w.beginSection("thrm", 1);
    w.putDouble(tempC_);
    // ambientC is mutable via setAmbientC(), so it is run state.
    w.putDouble(config_.ambientC);
}

bool
ThermalModel::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("thrm", 1))
        return false;
    double temp_c, ambient_c;
    if (!r.getDouble(&temp_c) || !r.getDouble(&ambient_c))
        return false;
    tempC_ = temp_c;
    config_.ambientC = ambient_c;
    return true;
}

} // namespace dora
