/**
 * @file
 * Battery-life translation.
 *
 * The paper's energy-efficiency results "directly translate to battery
 * life improvement" because its power measurements cover the whole
 * device. This helper makes that translation explicit for the modeled
 * Nexus 5 battery (2300 mAh at a 3.8 V nominal rail = 8.74 Wh).
 */

#ifndef DORA_POWER_BATTERY_HH
#define DORA_POWER_BATTERY_HH

namespace dora
{

/** Battery description. */
struct BatterySpec
{
    double capacityMah = 2300.0;  //!< Nexus 5 pack
    double nominalV = 3.8;

    /** Usable energy in watt-hours. */
    double wattHours() const { return capacityMah * nominalV / 1000.0; }
};

/**
 * Hours of continuous operation at @p mean_power_w on @p battery.
 * fatal() on non-positive power.
 */
double batteryLifeHours(double mean_power_w,
                        const BatterySpec &battery = {});

/**
 * Battery-life change (as a multiplicative factor) implied by a PPW
 * improvement at equal delivered performance: energy per page load is
 * 1/PPW, so life scales directly with PPW.
 */
double batteryLifeFactorFromPpw(double ppw_new, double ppw_baseline);

} // namespace dora

#endif // DORA_POWER_BATTERY_HH
