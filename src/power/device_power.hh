/**
 * @file
 * Whole-device power: the simulated stand-in for the National
 * Instruments DAQ of the paper's methodology (Section IV-A).
 *
 * Total device power = device baseline (display, radios, storage, PMIC)
 *                    + core dynamic power
 *                    + L2/interconnect traffic energy
 *                    + DRAM traffic + background power
 *                    + SoC leakage (temperature/voltage dependent)
 *                    + DVFS transition energy.
 *
 * Like the paper's measurements, energy-efficiency results computed on
 * top of this include the *whole device*, so improvements translate to
 * battery life. The die temperature is advanced each tick from the SoC
 * heat (dynamic + leakage), closing the leakage feedback loop.
 */

#ifndef DORA_POWER_DEVICE_POWER_HH
#define DORA_POWER_DEVICE_POWER_HH

#include <vector>

#include "power/dynamic_power.hh"
#include "power/leakage.hh"
#include "power/thermal.hh"
#include "soc/soc.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Configuration of the whole-device power integrator. */
struct DevicePowerConfig
{
    DynamicPowerConfig dynamic;
    ThermalConfig thermal;
    /** Always-on device power: display at browsing brightness etc. */
    double baselineW = 1.35;
};

/** Power breakdown for one tick (watts; energies already divided by dt). */
struct PowerBreakdown
{
    double baseline = 0.0;
    double coreDynamic = 0.0;
    double l2Traffic = 0.0;
    double dram = 0.0;
    double leakage = 0.0;
    double dvfsSwitch = 0.0;

    /** Sum of all components. */
    double total() const
    {
        return baseline + coreDynamic + l2Traffic + dram + leakage +
            dvfsSwitch;
    }
};

/**
 * Integrates device power and die temperature tick by tick.
 */
class DevicePower
{
  public:
    DevicePower(const DevicePowerConfig &config,
                const LeakageModel &leakage_truth);

    /**
     * Account one tick.
     * @param summary  SoC tick outcome
     * @param dt_sec   tick duration
     * @return the power breakdown for the tick
     */
    PowerBreakdown step(const SocTickSummary &summary, double dt_sec);

    /** Die temperature (degC) after the last step. */
    double temperatureC() const { return thermal_.temperatureC(); }

    /** Total device power (W) during the last tick. */
    double lastPowerW() const { return lastPower_; }

    /** Cumulative device energy (J) since reset. */
    double totalEnergyJ() const { return totalEnergyJ_; }

    /** Cumulative time (s) since reset. */
    double totalSeconds() const { return totalSeconds_; }

    /** Mean device power (W) since reset. */
    double meanPowerW() const;

    /** Thermal model access (ambient sweeps, steady-state queries). */
    ThermalModel &thermal() { return thermal_; }
    const ThermalModel &thermal() const { return thermal_; }

    /** The ground-truth leakage physics. */
    const LeakageModel &leakageTruth() const { return leakage_; }

    /** Reset energy/time integration and die temperature. */
    void reset();

    /** Serialize integration state and the thermal model. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const DevicePowerConfig &config() const { return config_; }

  private:
    DevicePowerConfig config_;  // dora:snapshot-exclude(construction config)
    // dora:snapshot-exclude(stateless evaluator over config)
    DynamicPowerModel dynamic_;
    // dora:snapshot-exclude(stateless evaluator over config)
    LeakageModel leakage_;
    ThermalModel thermal_;
    double lastPower_ = 0.0;
    double totalEnergyJ_ = 0.0;
    double totalSeconds_ = 0.0;
};

/**
 * DAQ-style time-series recorder: fixed-interval samples of device power
 * and temperature, for traces and debugging.
 */
class PowerTrace
{
  public:
    /** Record one sample. */
    void push(double t_sec, double power_w, double temp_c);

    struct Sample
    {
        double tSec;
        double powerW;
        double tempC;
    };

    const std::vector<Sample> &samples() const { return samples_; }

    /** Mean power over the recorded window (0 when empty). */
    double meanPowerW() const;

  private:
    std::vector<Sample> samples_;
};

} // namespace dora

#endif // DORA_POWER_DEVICE_POWER_HH
