/**
 * @file
 * Lumped-RC thermal model of the SoC die.
 *
 * A single thermal node (the shared frequency/voltage domain of the
 * MSM8974) with thermal resistance R to ambient and heat capacity C:
 *
 *     C * dT/dt = P_soc - (T - T_ambient) / R
 *
 * Steady-state rise is P*R; the paper's measurement that die temperature
 * climbs from ~58 degC to ~65 degC between mid and high frequency at
 * room ambient (Section V-F) calibrates R. The closed loop
 * power -> temperature -> leakage -> power is what makes Figure 10
 * reproducible.
 */

#ifndef DORA_POWER_THERMAL_HH
#define DORA_POWER_THERMAL_HH

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Thermal RC parameters. */
struct ThermalConfig
{
    double ambientC = 25.0;          //!< ambient temperature (degC)
    double thermalResistance = 14.0; //!< K per watt to ambient
    double heatCapacity = 0.12;      //!< joules per kelvin (junction node)
    double initialC = 32.0;          //!< die temperature at power-on
    /**
     * Junction temperature ceiling (degC). Real SoCs enforce this with
     * hardware throttling; the clamp also keeps the exponential
     * leakage/RC feedback loop finite under unrealistically high
     * sustained power.
     */
    double maxJunctionC = 105.0;
};

/**
 * Integrates the die temperature forward in time.
 */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalConfig &config);

    /** Advance by @p dt_sec with @p soc_power_w dissipated on die. */
    void step(double soc_power_w, double dt_sec);

    /** Current die temperature (degC). */
    double temperatureC() const { return tempC_; }

    /** Steady-state temperature for a constant @p soc_power_w. */
    double steadyStateC(double soc_power_w) const;

    /** Change the ambient temperature (e.g. Fig. 10b cold-room study). */
    void setAmbientC(double ambient_c);

    /** Current ambient temperature (degC). */
    double ambientC() const { return config_.ambientC; }

    /** Reset the die to the initial temperature. */
    void reset();

    /** Serialize die temperature and the (mutable) ambient. */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

    const ThermalConfig &config() const { return config_; }

  private:
    ThermalConfig config_;
    double tempC_;
};

} // namespace dora

#endif // DORA_POWER_THERMAL_HH
