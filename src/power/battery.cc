#include "power/battery.hh"

#include "common/logging.hh"

namespace dora
{

double
batteryLifeHours(double mean_power_w, const BatterySpec &battery)
{
    if (mean_power_w <= 0.0)
        fatal("batteryLifeHours: non-positive power %g W", mean_power_w);
    return battery.wattHours() / mean_power_w;
}

double
batteryLifeFactorFromPpw(double ppw_new, double ppw_baseline)
{
    if (ppw_new <= 0.0 || ppw_baseline <= 0.0)
        fatal("batteryLifeFactorFromPpw: non-positive PPW");
    return ppw_new / ppw_baseline;
}

} // namespace dora
