/**
 * @file
 * Leakage power model — the empirical temperature/voltage form of
 * Liao, He & Lepak (paper Equation 5):
 *
 *     P_lkg = k1 * v * T^2 * e^{(alpha*v + beta)/T} + k2 * e^{gamma*v + delta}
 *
 * with T in kelvin and v in volts. The same class serves two roles:
 *   - with the *ground-truth* parameters it is part of the simulated
 *     device's physics (what the DAQ would measure);
 *   - with *fitted* parameters (see GaussNewton in src/model) it is the
 *     leakage component inside DORA's power predictor.
 */

#ifndef DORA_POWER_LEAKAGE_HH
#define DORA_POWER_LEAKAGE_HH

#include <array>

namespace dora
{

/** Parameters of the Liao leakage form. */
struct LeakageParams
{
    double k1 = 0.0;
    double k2 = 0.0;
    double alpha = 0.0;
    double beta = 0.0;
    double gamma = 0.0;
    double delta = 0.0;

    /** Pack into an array (fitting order: k1,k2,alpha,beta,gamma,delta). */
    std::array<double, 6> toArray() const;

    /** Unpack from the fitting order. */
    static LeakageParams fromArray(const std::array<double, 6> &a);
};

/**
 * Evaluates the Liao leakage form.
 */
class LeakageModel
{
  public:
    explicit LeakageModel(const LeakageParams &params);

    /**
     * Ground-truth parameters of the simulated MSM8974: ~0.25 W at
     * 0.9 V / 37 degC rising to ~1 W at 1.1 V / 67 degC, matching the
     * magnitude the paper attributes to leakage at high frequency and
     * room ambient (Section V-F).
     */
    static LeakageModel msm8974Truth();

    /** Leakage power (W) at @p voltage (V) and @p temp_c (Celsius). */
    double power(double voltage, double temp_c) const;

    const LeakageParams &params() const { return params_; }

  private:
    LeakageParams params_;
};

/** Celsius -> kelvin. */
constexpr double celsiusToKelvin(double c) { return c + 273.15; }

} // namespace dora

#endif // DORA_POWER_LEAKAGE_HH
