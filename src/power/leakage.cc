#include "power/leakage.hh"

#include <cmath>

#include "common/logging.hh"

namespace dora
{

std::array<double, 6>
LeakageParams::toArray() const
{
    return {k1, k2, alpha, beta, gamma, delta};
}

LeakageParams
LeakageParams::fromArray(const std::array<double, 6> &a)
{
    LeakageParams p;
    p.k1 = a[0];
    p.k2 = a[1];
    p.alpha = a[2];
    p.beta = a[3];
    p.gamma = a[4];
    p.delta = a[5];
    return p;
}

LeakageModel::LeakageModel(const LeakageParams &params)
    : params_(params)
{
}

LeakageModel
LeakageModel::msm8974Truth()
{
    LeakageParams p;
    p.k1 = 0.50;
    p.k2 = 0.08;
    p.alpha = 800.0;
    p.beta = -4600.0;
    p.gamma = 3.0;
    p.delta = -3.0;
    return LeakageModel(p);
}

double
LeakageModel::power(double voltage, double temp_c) const
{
    const double t = celsiusToKelvin(temp_c);
    if (t <= 0.0)
        panic("LeakageModel::power: temperature %g C below absolute zero",
              temp_c);
    const double term1 = params_.k1 * voltage * t * t *
        std::exp((params_.alpha * voltage + params_.beta) / t);
    const double term2 = params_.k2 *
        std::exp(params_.gamma * voltage + params_.delta);
    return term1 + term2;
}

} // namespace dora
