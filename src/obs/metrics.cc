#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"

namespace dora
{

namespace
{

/** Atomic max for doubles (CAS loop; contention is negligible). */
void
atomicMax(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value > current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Atomic min for doubles. */
void
atomicMin(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (value < current &&
           !target.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
}

/** Atomic add for doubles (fetch_add on atomic<double> needs C++20). */
void
atomicAdd(std::atomic<double> &target, double value)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + value,
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

MetricHistogram::MetricHistogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

void
MetricHistogram::record(double value)
{
    int bucket = 0;
    if (value > 0.0 && std::isfinite(value)) {
        // Bucket by binary exponent, offset so values around 1e-9
        // (nanoseconds expressed in seconds) still spread out.
        const int exp = std::ilogb(value);
        bucket = std::clamp(exp + 32, 0, kBuckets - 1);
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
    atomicMin(min_, value);
    atomicMax(max_, value);
}

double
MetricHistogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

uint64_t
MetricHistogram::bucketCount(int bucket) const
{
    if (bucket < 0 || bucket >= kBuckets)
        return 0;
    return buckets_[bucket].load(std::memory_order_relaxed);
}

void
MetricHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Function-local singleton: every instrument inside is atomic and
    // the registry maps are GUARDED_BY(mutex_).
    // NOLINTNEXTLINE(dora-conc-global-state)
    static MetricsRegistry registry;
    return registry;
}

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    MutexLock lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>();
    return *slot;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name)
{
    MutexLock lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>();
    return *slot;
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    MutexLock lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>();
    return *slot;
}

std::string
MetricsRegistry::snapshotText() const
{
    std::ostringstream out;
    out.precision(6);
    MutexLock lock(mutex_);
    // std::map iteration is name-sorted, which is the determinism
    // contract: identical state renders to identical text.
    for (const auto &[name, c] : counters_)
        out << "counter " << name << " " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        out << "gauge " << name << " " << g->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        out << "histogram " << name << " count=" << h->count()
            << " mean=" << h->mean();
        if (h->count() > 0)
            out << " min=" << h->min() << " max=" << h->max();
        out << "\n";
    }
    for (const auto &entry : warnSuppressionEntries()) {
        if (entry.suppressed == 0)
            continue;
        out << "counter log.warn.suppressed{key=\"" << entry.key
            << "\"} " << entry.suppressed << "\n";
    }
    if (const uint64_t total = warnSuppressedTotal())
        out << "counter log.warn.suppressed_total " << total << "\n";
    return out.str();
}

void
MetricsRegistry::resetForTest()
{
    MutexLock lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace dora
