/**
 * @file
 * Structured run tracing: per-run event buffers collected into a
 * session and exported as a JSONL event stream, a Chrome trace-event
 * timeline (loadable in chrome://tracing / Perfetto), and a manifest.
 *
 * Design constraints (DESIGN.md §5c):
 *
 *  - **Byte-identical at any `--jobs` count.** Every run's events are
 *    recorded into a private RunTrace in whatever worker thread runs
 *    the simulation; at finalize() the session sorts runs by a
 *    deterministic key (and, for identical keys, by serialized
 *    content) before writing, so parallel completion order never
 *    reaches the files. Only *simulated* time appears in trace
 *    artifacts — wall-clock observations belong in obs/metrics.hh.
 *
 *  - **Near-zero cost when disabled.** TraceSession::active() is one
 *    relaxed atomic load; instrumented components hold a RunTrace
 *    pointer that is simply null when no session is installed, so the
 *    hot path pays a predictable-not-taken branch and no formatting.
 *    All rendering happens once, at finalize().
 */

#ifndef DORA_OBS_TRACE_HH
#define DORA_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <signal.h>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dora
{

/** A typed value attached to a trace event or run meta entry. */
struct TraceValue
{
    enum class Kind { Uint, Int, Real, Text, Boolean };

    Kind kind = Kind::Uint;
    uint64_t u = 0;
    int64_t i = 0;
    double d = 0.0;
    bool b = false;
    std::string s;

    TraceValue() = default;
    template <typename T>
        requires(std::is_unsigned_v<T> && !std::is_same_v<T, bool>)
    TraceValue(T v) : kind(Kind::Uint), u(v)
    {
    }
    TraceValue(int64_t v) : kind(Kind::Int), i(v) {}
    TraceValue(int v) : kind(Kind::Int), i(v) {}
    TraceValue(double v) : kind(Kind::Real), d(v) {}
    TraceValue(bool v) : kind(Kind::Boolean), b(v) {}
    TraceValue(std::string v) : kind(Kind::Text), s(std::move(v)) {}
    TraceValue(const char *v) : kind(Kind::Text), s(v) {}

    /** Render as a JSON value (deterministic %.17g for reals). */
    std::string toJson() const;
};

/** One key/value event argument. */
struct TraceArg
{
    const char *key;  //!< must point at a string literal
    TraceValue value;
};

/** One structured event inside a run. Times are *simulated* seconds. */
struct TraceEvent
{
    double tSec = 0.0;
    double durSec = -1.0;  //!< >= 0 only for phase 'X' (complete)
    char phase = 'i';      //!< Chrome phases: B, E, i, X
    const char *cat = "";  //!< string literal
    const char *name = ""; //!< string literal
    std::vector<TraceArg> args;
};

/**
 * Event buffer for one experiment run. Single-threaded: a run is
 * simulated entirely on one worker, so recording needs no locks.
 */
class RunTrace
{
  public:
    explicit RunTrace(std::string key) : key_(std::move(key)) {}

    const std::string &key() const { return key_; }

    /** Attach run-level metadata (workload, governor, digests...). */
    void setMeta(const std::string &key, TraceValue value);

    /** Look up a meta value; nullptr when absent. */
    const TraceValue *meta(const std::string &key) const;

    /** Record an instant event. */
    void instant(double t_sec, const char *cat, const char *name,
                 std::initializer_list<TraceArg> args = {});

    /** Record a duration-begin event. */
    void begin(double t_sec, const char *cat, const char *name,
               std::initializer_list<TraceArg> args = {});

    /** Record a duration-end event (pairs with begin by nesting). */
    void end(double t_sec, const char *cat, const char *name);

    /** Record a complete (begin+duration) event. */
    void complete(double t_sec, double dur_sec, const char *cat,
                  const char *name,
                  std::initializer_list<TraceArg> args = {});

    const std::vector<TraceEvent> &events() const { return events_; }

    /**
     * JSONL rendering: one meta line (`{"run":key,"meta":{...}}`)
     * followed by one line per event, in record order. This string is
     * also the content half of the session's deterministic sort key.
     */
    std::string toJsonl() const;

  private:
    std::string key_;
    std::map<std::string, TraceValue> meta_;  //!< sorted rendering
    std::vector<TraceEvent> events_;
};

/**
 * Collects finished RunTraces (thread-safe submit) and writes the
 * three per-session artifacts into its directory at finalize():
 *
 *   events.jsonl   every run's meta + events, runs in sorted order
 *   trace.json     Chrome trace-event timeline (one tid per run)
 *   manifest.json  config hash, base RNG seed, git describe, combined
 *                  measurement digest, run/event counts
 *
 * All three are byte-identical at any `--jobs` count.
 */
class TraceSession
{
  public:
    /**
     * @param dir   output directory (created if missing)
     * @param label session label recorded in the manifest ("fig09"...)
     */
    TraceSession(std::string dir, std::string label);

    const std::string &dir() const { return dir_; }

    /** Move a finished run into the session. Thread-safe. */
    void submit(RunTrace &&run);

    /** Extra manifest fields ("bench", ad-hoc context). Thread-safe. */
    void setManifestField(const std::string &key, std::string value);

    /** Number of runs submitted so far. */
    size_t runCount() const;

    /**
     * Sort runs, write events.jsonl / trace.json / manifest.json.
     * Returns false (with a warn) if the directory or files cannot be
     * written. Idempotent: later calls rewrite the same bytes.
     */
    bool finalize();

    /**
     * Best-effort flush from a SIGINT/SIGTERM handler: records a
     * `truncated` marker (the delivering signal) in manifest.json and
     * writes whatever runs were submitted before the interrupt, so a
     * killed bench still lands a usable partial trace. Uses try_lock:
     * if the session mutex is held mid-submit, gives up (returns
     * false) instead of deadlocking inside the handler. Everything
     * downstream is technically async-signal-unsafe; that is accepted
     * only because the process is about to die anyway, and the worst
     * case is a torn artifact that finalize() would have overwritten.
     */
    bool finalizeOnSignal(int sig);

    /**
     * The installed session, or nullptr when tracing is disabled —
     * one relaxed atomic load, safe to query on warm paths.
     */
    static TraceSession *active();

    /** Install @p session as the process-wide sink (nullptr clears). */
    static void install(TraceSession *session);

  private:
    /** finalize() body; callers hold mutex_. */
    bool finalizeLocked() REQUIRES(mutex_);

    std::string dir_;
    std::string label_;
    mutable Mutex mutex_;
    std::vector<RunTrace> runs_ GUARDED_BY(mutex_);
    std::map<std::string, std::string> manifestFields_
        GUARDED_BY(mutex_);
};

/**
 * RAII observability scope for bench mains: parses `--trace=DIR`
 * (or `--trace DIR`, or the DORA_TRACE environment variable; the flag
 * wins), installs a TraceSession for the binary's lifetime, and on
 * destruction finalizes the session and dumps the metrics snapshot to
 * stderr. With neither flag nor variable set it is inert.
 *
 * While a session is installed the guard also hooks SIGINT/SIGTERM: a
 * killed bench best-effort-flushes its partial trace with a
 * `truncated` marker in manifest.json (see finalizeOnSignal()), then
 * re-raises the signal so the exit status stays conventional. The
 * previous handlers are restored on destruction.
 */
class ObsGuard
{
  public:
    /** @param label manifest label; argv[0]'s basename when empty. */
    ObsGuard(int argc, char **argv, std::string label = "");

    ObsGuard(const ObsGuard &) = delete;
    ObsGuard &operator=(const ObsGuard &) = delete;

    ~ObsGuard();

    /** True when a trace session is installed. */
    bool enabled() const { return session_ != nullptr; }

  private:
    std::unique_ptr<TraceSession> session_;
    bool signalHooked_ = false;
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
};

/** `git describe --always --dirty` of the cwd; "unknown" on failure. */
std::string gitDescribe();

/** Hex rendering "0x..." used for hashes/digests in trace artifacts. */
std::string hexU64(uint64_t value);

} // namespace dora

#endif // DORA_OBS_TRACE_HH
