#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/cli.hh"
#include "common/exact_ticks.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace dora
{

namespace
{

/** The installed session; relaxed loads keep the disabled path free. */
std::atomic<TraceSession *> g_session{nullptr};

/** JSON string escaping (quotes, backslash, control characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Deterministic shortest-faithful JSON rendering of a double. */
std::string
jsonReal(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/** Append `"key":value,` pairs of @p args as a JSON object. */
std::string
argsJson(const std::vector<TraceArg> &args)
{
    std::string out = "{";
    for (size_t i = 0; i < args.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += jsonEscape(args[i].key);
        out += "\":";
        out += args[i].value.toJson();
    }
    out += '}';
    return out;
}

} // namespace

std::string
TraceValue::toJson() const
{
    switch (kind) {
      case Kind::Uint:
        return std::to_string(u);
      case Kind::Int:
        return std::to_string(i);
      case Kind::Real:
        return jsonReal(d);
      case Kind::Boolean:
        return b ? "true" : "false";
      case Kind::Text:
        return "\"" + jsonEscape(s) + "\"";
    }
    return "null";
}

void
RunTrace::setMeta(const std::string &key, TraceValue value)
{
    meta_[key] = std::move(value);
}

const TraceValue *
RunTrace::meta(const std::string &key) const
{
    const auto it = meta_.find(key);
    return it == meta_.end() ? nullptr : &it->second;
}

void
RunTrace::instant(double t_sec, const char *cat, const char *name,
                  std::initializer_list<TraceArg> args)
{
    events_.push_back(TraceEvent{t_sec, -1.0, 'i', cat, name,
                                 std::vector<TraceArg>(args)});
}

void
RunTrace::begin(double t_sec, const char *cat, const char *name,
                std::initializer_list<TraceArg> args)
{
    events_.push_back(TraceEvent{t_sec, -1.0, 'B', cat, name,
                                 std::vector<TraceArg>(args)});
}

void
RunTrace::end(double t_sec, const char *cat, const char *name)
{
    events_.push_back(TraceEvent{t_sec, -1.0, 'E', cat, name, {}});
}

void
RunTrace::complete(double t_sec, double dur_sec, const char *cat,
                   const char *name,
                   std::initializer_list<TraceArg> args)
{
    events_.push_back(TraceEvent{t_sec, dur_sec, 'X', cat, name,
                                 std::vector<TraceArg>(args)});
}

std::string
RunTrace::toJsonl() const
{
    std::string out;
    out.reserve(256 + events_.size() * 96);
    out += "{\"run\":\"" + jsonEscape(key_) + "\",\"meta\":{";
    bool first = true;
    for (const auto &[key, value] : meta_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(key);
        out += "\":";
        out += value.toJson();
    }
    out += "}}\n";
    for (const auto &e : events_) {
        out += "{\"run\":\"" + jsonEscape(key_) + "\",\"t\":" +
            jsonReal(e.tSec);
        if (e.phase == 'X')
            out += ",\"dur\":" + jsonReal(e.durSec);
        out += ",\"ph\":\"";
        out += e.phase;
        out += "\",\"cat\":\"";
        out += jsonEscape(e.cat);
        out += "\",\"name\":\"";
        out += jsonEscape(e.name);
        out += '"';
        if (!e.args.empty())
            out += ",\"args\":" + argsJson(e.args);
        out += "}\n";
    }
    return out;
}

TraceSession::TraceSession(std::string dir, std::string label)
    : dir_(std::move(dir)), label_(std::move(label))
{
}

void
TraceSession::submit(RunTrace &&run)
{
    MutexLock lock(mutex_);
    runs_.push_back(std::move(run));
}

void
TraceSession::setManifestField(const std::string &key,
                               std::string value)
{
    MutexLock lock(mutex_);
    manifestFields_[key] = std::move(value);
}

size_t
TraceSession::runCount() const
{
    MutexLock lock(mutex_);
    return runs_.size();
}

bool
TraceSession::finalize()
{
    MutexLock lock(mutex_);
    return finalizeLocked();
}

bool
TraceSession::finalizeOnSignal(int sig)
{
    // Handler context: never block. A submit in flight on another
    // thread means we lose the flush, not the process's last moments.
    if (!mutex_.try_lock())
        return false;
    manifestFields_["truncated"] = "signal " + std::to_string(sig);
    const bool ok = finalizeLocked();
    mutex_.unlock();
    return ok;
}

bool
TraceSession::finalizeLocked()
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        warn("TraceSession: cannot create '%s': %s", dir_.c_str(),
             ec.message().c_str());
        return false;
    }

    // Deterministic order: sort by key, then by rendered content.
    // Parallel sweeps submit in completion order; identical inputs
    // always serialize to identical bytes, so this sort erases the
    // thread schedule from every artifact.
    struct Entry
    {
        const RunTrace *run;
        std::string jsonl;
    };
    std::vector<Entry> entries;
    entries.reserve(runs_.size());
    for (const auto &run : runs_)
        entries.push_back(Entry{&run, run.toJsonl()});
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.run->key() != b.run->key())
                      return a.run->key() < b.run->key();
                  return a.jsonl < b.jsonl;
              });

    const std::string events_path = dir_ + "/events.jsonl";
    const std::string chrome_path = dir_ + "/trace.json";
    const std::string manifest_path = dir_ + "/manifest.json";

    // --- events.jsonl ---
    size_t total_events = 0;
    {
        std::ofstream out(events_path, std::ios::trunc);
        for (const auto &entry : entries) {
            out << entry.jsonl;
            total_events += entry.run->events().size();
        }
        if (!out.good()) {
            warn("TraceSession: write to '%s' failed",
                 events_path.c_str());
            return false;
        }
    }

    // --- trace.json (Chrome trace-event format) ---
    {
        std::ofstream out(chrome_path, std::ios::trunc);
        out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
        bool first = true;
        auto emit = [&out, &first](const std::string &event) {
            if (!first)
                out << ",\n";
            first = false;
            out << event;
        };
        for (size_t i = 0; i < entries.size(); ++i) {
            emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" +
                 std::to_string(i + 1) +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                 jsonEscape(entries[i].run->key()) + "\"}}");
        }
        for (size_t i = 0; i < entries.size(); ++i) {
            const std::string tid = std::to_string(i + 1);
            for (const auto &e : entries[i].run->events()) {
                char ts[40];
                std::snprintf(ts, sizeof(ts), "%.3f", e.tSec * 1e6);
                std::string line = "{\"ph\":\"";
                line += e.phase;
                line += "\",\"pid\":1,\"tid\":" + tid + ",\"ts\":" + ts;
                if (e.phase == 'X') {
                    char dur[40];
                    std::snprintf(dur, sizeof(dur), "%.3f",
                                  e.durSec * 1e6);
                    line += ",\"dur\":";
                    line += dur;
                }
                if (e.phase == 'i')
                    line += ",\"s\":\"t\"";
                line += ",\"cat\":\"" + jsonEscape(e.cat) +
                    "\",\"name\":\"" + jsonEscape(e.name) + "\"";
                if (!e.args.empty())
                    line += ",\"args\":" + argsJson(e.args);
                line += "}";
                emit(line);
            }
        }
        out << "\n]}\n";
        if (!out.good()) {
            warn("TraceSession: write to '%s' failed",
                 chrome_path.c_str());
            return false;
        }
    }

    // --- manifest.json ---
    {
        // Combined digests: FNV over the sorted per-run meta values,
        // so one flipped bit in any run flips the manifest.
        std::string digest_text, config_text;
        for (const auto &entry : entries) {
            if (const TraceValue *d = entry.run->meta("digest"))
                digest_text += d->toJson() + "\n";
            if (const TraceValue *c = entry.run->meta("config_hash"))
                config_text += c->toJson() + "\n";
        }
        std::map<std::string, std::string> fields = manifestFields_;
        fields["schema"] = "dora-trace-v1";
        fields["label"] = label_;
        fields["git"] = gitDescribe();
        fields["rng_seed"] = hexU64(0x9E3779B97F4A7C15ull);
        fields["runs"] = std::to_string(entries.size());
        fields["events"] = std::to_string(total_events);
        fields["config_hash"] = hexU64(hashLabel(config_text));
        fields["measurement_digest"] = hexU64(hashLabel(digest_text));

        std::ofstream out(manifest_path, std::ios::trunc);
        out << "{\n";
        bool first = true;
        for (const auto &[key, value] : fields) {
            if (!first)
                out << ",\n";
            first = false;
            out << "  \"" << jsonEscape(key) << "\": \""
                << jsonEscape(value) << "\"";
        }
        out << "\n}\n";
        if (!out.good()) {
            warn("TraceSession: write to '%s' failed",
                 manifest_path.c_str());
            return false;
        }
    }
    return true;
}

TraceSession *
TraceSession::active()
{
    return g_session.load(std::memory_order_relaxed);
}

void
TraceSession::install(TraceSession *session)
{
    g_session.store(session, std::memory_order_release);
}

namespace
{

/** Session visible to the SIGINT/SIGTERM flush handler. */
std::atomic<TraceSession *> g_signalSession{nullptr};

/**
 * Best-effort-flush the active session with a `truncated` marker,
 * then die by the original signal (default disposition) so scripts
 * see the conventional exit status.
 */
void
traceSignalHandler(int sig)
{
    TraceSession *session =
        g_signalSession.load(std::memory_order_relaxed);
    if (session)
        session->finalizeOnSignal(sig);
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

/** Resolve the trace directory from --trace / DORA_TRACE ("" = off). */
std::string
traceDirFromArgs(int argc, char **argv)
{
    if (const auto dir = cliFlagValue(argc, argv, "--trace"))
        return *dir;
    if (const char *env = std::getenv("DORA_TRACE"))
        return env;
    return "";
}

} // namespace

ObsGuard::ObsGuard(int argc, char **argv, std::string label)
{
    // Every bench wraps main in an ObsGuard, so this is the single
    // place the --exact-ticks escape hatch is honored process-wide.
    parseExactTicksFlag(argc, argv);
    if (label.empty() && argc > 0 && argv && argv[0])
        label = std::filesystem::path(argv[0]).filename().string();
    const std::string dir = traceDirFromArgs(argc, argv);
    if (dir.empty())
        return;
    session_ = std::make_unique<TraceSession>(dir, label);
    TraceSession::install(session_.get());
    inform("obs: tracing to %s", dir.c_str());

    // A killed bench should still land its partial trace: flush with
    // a `truncated` marker, then re-raise so the exit status is the
    // conventional signal death.
    g_signalSession.store(session_.get());
    struct sigaction action = {};
    action.sa_handler = traceSignalHandler;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &oldInt_);
    ::sigaction(SIGTERM, &action, &oldTerm_);
    signalHooked_ = true;
}

ObsGuard::~ObsGuard()
{
    if (!session_)
        return;
    if (signalHooked_) {
        g_signalSession.store(nullptr);
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
    }
    TraceSession::install(nullptr);
    if (session_->finalize())
        inform("obs: wrote %zu run traces to %s",
               session_->runCount(), session_->dir().c_str());
    // The metrics snapshot is a multi-line block dump; the
    // rate-limited log sink is per-line.
    // NOLINTNEXTLINE(dora-hyg-stream)
    std::fputs(MetricsRegistry::global().snapshotText().c_str(),
               stderr);
}

std::string
gitDescribe()
{
    std::string out;
    if (FILE *pipe =
            popen("git describe --always --dirty 2>/dev/null", "r")) {
        char buf[128];
        while (std::fgets(buf, sizeof(buf), pipe))
            out += buf;
        pclose(pipe);
    }
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

std::string
hexU64(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace dora
