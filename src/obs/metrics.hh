/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms with
 * deterministic snapshot ordering.
 *
 * Metrics answer "how much / how fast" questions about a whole process
 * (jobs executed, tick rates, warn suppression) and are intentionally
 * separate from the structured trace layer (obs/trace.hh), which
 * answers "what happened when" per run. Traced artifacts must be
 * byte-identical at any `--jobs` count, so anything wall-clock-derived
 * lives here — metrics snapshots go to stderr, never into the
 * deterministic trace files.
 *
 * Recording is lock-free (relaxed atomics) so instruments can sit on
 * warm paths: a counter add is one atomic increment, a histogram
 * record is an exponent extraction plus two atomic adds. Registration
 * takes a mutex but callers cache the returned reference (instrument
 * addresses are stable for the life of the registry).
 */

#ifndef DORA_OBS_METRICS_HH
#define DORA_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace dora
{

/** Monotonic event count. */
class MetricCounter
{
  public:
    void add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-written instantaneous value (queue depth, temperature...). */
class MetricGauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Power-of-two bucketed histogram over positive values; negative and
 * zero samples land in the first bucket. Tracks count, sum, min, and
 * max exactly; the buckets give the shape.
 */
class MetricHistogram
{
  public:
    static constexpr int kBuckets = 64;

    void record(double value);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Mean of all recorded values (0 when empty). */
    double mean() const;

    /** Smallest recorded value (+inf when empty). */
    double min() const { return min_.load(std::memory_order_relaxed); }

    /** Largest recorded value (-inf when empty). */
    double max() const { return max_.load(std::memory_order_relaxed); }

    uint64_t bucketCount(int bucket) const;

    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;

  public:
    MetricHistogram();
};

/**
 * Name-keyed registry. Instruments are created on first lookup and
 * live as long as the registry; snapshotText() renders every
 * instrument sorted by name, so two snapshots of identical state are
 * identical text.
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry. */
    static MetricsRegistry &global();

    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    MetricHistogram &histogram(const std::string &name);

    /**
     * Deterministically ordered text rendering of every instrument,
     * one line each, plus the log sink's warn-suppression counters
     * (common/logging.hh) so suppressed spam stays visible.
     */
    std::string snapshotText() const;

    /** Zero every instrument (tests). Registration is kept. */
    void resetForTest();

  private:
    mutable Mutex mutex_;
    std::map<std::string, std::unique_ptr<MetricCounter>> counters_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges_
        GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
        GUARDED_BY(mutex_);
};

} // namespace dora

#endif // DORA_OBS_METRICS_HH
