/**
 * @file
 * Frequency-governor interface.
 *
 * A governor is a userspace policy invoked at its own decision interval
 * with a snapshot of runtime state (the GovernorView) and returns the
 * operating-point index the SoC should run at. The experiment harness
 * owns the invocation loop, mirroring how DORA is deployed on Android:
 * a daemon reading perf counters and writing sysfs cpufreq knobs.
 */

#ifndef DORA_GOVERNOR_GOVERNOR_HH
#define DORA_GOVERNOR_GOVERNOR_HH

#include <cstddef>
#include <string>

#include "browser/web_page.hh"
#include "soc/freq_table.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Snapshot of runtime state handed to a governor at each decision.
 * All windowed quantities cover the interval since the previous
 * decision.
 */
struct GovernorView
{
    double nowSec = 0.0;
    size_t freqIndex = 0;              //!< current operating point
    const FreqTable *freqTable = nullptr;

    double totalUtilization = 0.0;     //!< max core busy fraction
    double browserUtilization = 0.0;   //!< busy fraction of browser cores
    double corunUtilization = 0.0;     //!< X9: co-scheduled task core util
    double l2Mpki = 0.0;               //!< X6: shared L2 MPKI (all cores)
    double temperatureC = 0.0;         //!< die temperature

    const WebPageFeatures *page = nullptr;  //!< page loading, if any
    double deadlineSec = 3.0;          //!< QoS target for the page load
    double elapsedLoadSec = 0.0;       //!< time since the load started
};

/**
 * Abstract frequency governor.
 */
class Governor
{
  public:
    virtual ~Governor() = default;

    /** Governor name for tables ("interactive", "DORA", ...). */
    virtual const std::string &name() const = 0;

    /** Seconds between decisions (harness calls at this cadence). */
    virtual double decisionIntervalSec() const = 0;

    /** Pick the operating-point index for the next interval. */
    virtual size_t decideFrequencyIndex(const GovernorView &view) = 0;

    /** Clear internal state for a fresh run. */
    virtual void reset() {}

    /**
     * Serialize decision-relevant internal state. The default covers
     * stateless governors (writes an empty marker section); stateful
     * governors override both methods with a section of their own.
     */
    virtual void snapshot(SnapshotWriter &w) const;

    /** Restore state written by snapshot(); false on mismatch. */
    [[nodiscard]] virtual bool tryRestore(SnapshotReader &r);
};

/**
 * Always runs at the highest OPP — Android's `performance` governor.
 */
class PerformanceGovernor : public Governor
{
  public:
    PerformanceGovernor();
    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override { return 0.1; }
    size_t decideFrequencyIndex(const GovernorView &view) override;

  private:
    std::string name_;
};

/**
 * Always runs at the lowest OPP — Android's `powersave` governor.
 * (The paper excludes it from comparisons for its 7-26 s load times;
 * the tab03 bench demonstrates why.)
 */
class PowersaveGovernor : public Governor
{
  public:
    PowersaveGovernor();
    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override { return 0.1; }
    size_t decideFrequencyIndex(const GovernorView &view) override;

  private:
    std::string name_;
};

/**
 * Pins a single OPP for a whole run: used for frequency sweeps (Figs.
 * 1, 3, 6, 10b), model training, and the Offline_opt search.
 */
class FixedGovernor : public Governor
{
  public:
    explicit FixedGovernor(size_t freq_index);

    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override { return 0.1; }
    size_t decideFrequencyIndex(const GovernorView &view) override;

    /** Change the pinned OPP (takes effect at the next decision). */
    void setFrequencyIndex(size_t freq_index);

    void snapshot(SnapshotWriter &w) const override;
    [[nodiscard]] bool tryRestore(SnapshotReader &r) override;

  private:
    size_t freqIndex_;
    std::string name_;  // dora:snapshot-exclude(construction identity)
};

/** Tunables of the interactive-governor reimplementation. */
struct InteractiveConfig
{
    double intervalSec = 0.02;       //!< timer rate (20 ms)
    double targetLoad = 0.90;        //!< utilization setpoint
    double hispeedLoad = 0.85;       //!< jump threshold
    double hispeedFreqMhz = 1190.4;  //!< jump target
    double minSampleTimeSec = 0.08;  //!< dwell before ramping down
};

/**
 * Reimplementation of Android's default `interactive` governor — the
 * paper's baseline. Utilization-driven: jumps to hispeed_freq when a
 * core saturates, tracks cur*util/target_load above it, and refuses to
 * ramp down until the load has stayed low for min_sample_time.
 */
class InteractiveGovernor : public Governor
{
  public:
    explicit InteractiveGovernor(const InteractiveConfig &config = {});

    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override
    {
        return config_.intervalSec;
    }
    size_t decideFrequencyIndex(const GovernorView &view) override;
    void reset() override;

    void snapshot(SnapshotWriter &w) const override;
    [[nodiscard]] bool tryRestore(SnapshotReader &r) override;

    const InteractiveConfig &config() const { return config_; }

  private:
    InteractiveConfig config_;  // dora:snapshot-exclude(construction config)
    std::string name_;  // dora:snapshot-exclude(construction identity)
    double lastHighLoadSec_ = -1.0;  //!< last time load was above target
};

/** Tunables of the ondemand-governor reimplementation. */
struct OndemandConfig
{
    double intervalSec = 0.05;   //!< sampling rate
    double upThreshold = 0.80;   //!< jump-to-max load threshold
    /** Relative load headroom targeted when stepping down. */
    double downDifferential = 0.10;
};

/**
 * Reimplementation of the classic Linux `ondemand` governor, included
 * as an additional baseline beyond the paper's comparisons: jump to
 * the maximum OPP when utilization crosses up_threshold, otherwise
 * step down proportionally to the observed load.
 */
class OndemandGovernor : public Governor
{
  public:
    explicit OndemandGovernor(const OndemandConfig &config = {});

    const std::string &name() const override { return name_; }
    double decisionIntervalSec() const override
    {
        return config_.intervalSec;
    }
    size_t decideFrequencyIndex(const GovernorView &view) override;

    const OndemandConfig &config() const { return config_; }

  private:
    OndemandConfig config_;
    std::string name_;
};

} // namespace dora

#endif // DORA_GOVERNOR_GOVERNOR_HH
