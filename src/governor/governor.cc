#include "governor/governor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

namespace
{

/**
 * Defensive clamp for the utilization signal the load-tracking
 * governors key off. A faulted sensor can deliver NaN/inf (treated as
 * full load — fail toward performance, never a stall at min frequency)
 * or a negative reading (treated as idle). In-range values pass
 * through untouched so fault-free runs stay bit-identical.
 */
double
sanitizedUtilization(double util)
{
    if (!std::isfinite(util))
        return 1.0;
    if (util < 0.0)
        return 0.0;
    return util;
}

} // namespace

void
Governor::snapshot(SnapshotWriter &w) const
{
    w.beginSection("govs", 1);
}

bool
Governor::tryRestore(SnapshotReader &r)
{
    return r.beginSection("govs", 1);
}

PerformanceGovernor::PerformanceGovernor()
    : name_("performance")
{
}

size_t
PerformanceGovernor::decideFrequencyIndex(const GovernorView &view)
{
    return view.freqTable->maxIndex();
}

PowersaveGovernor::PowersaveGovernor()
    : name_("powersave")
{
}

size_t
PowersaveGovernor::decideFrequencyIndex(const GovernorView &view)
{
    return view.freqTable->minIndex();
}

FixedGovernor::FixedGovernor(size_t freq_index)
    : freqIndex_(freq_index), name_("fixed")
{
}

size_t
FixedGovernor::decideFrequencyIndex(const GovernorView &view)
{
    if (freqIndex_ >= view.freqTable->size())
        panic("FixedGovernor: index %zu out of table", freqIndex_);
    return freqIndex_;
}

void
FixedGovernor::setFrequencyIndex(size_t freq_index)
{
    freqIndex_ = freq_index;
}

void
FixedGovernor::snapshot(SnapshotWriter &w) const
{
    w.beginSection("govf", 1);
    w.putSize(freqIndex_);
}

bool
FixedGovernor::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("govf", 1))
        return false;
    size_t freq_index;
    if (!r.getSize(&freq_index))
        return false;
    freqIndex_ = freq_index;
    return true;
}

InteractiveGovernor::InteractiveGovernor(const InteractiveConfig &config)
    : config_(config), name_("interactive")
{
}

void
InteractiveGovernor::reset()
{
    lastHighLoadSec_ = -1.0;
}

size_t
InteractiveGovernor::decideFrequencyIndex(const GovernorView &view)
{
    const FreqTable &table = *view.freqTable;
    const double util = sanitizedUtilization(view.totalUtilization);
    const double cur_mhz = table.opp(view.freqIndex).coreMhz;

    // Target frequency tracking the utilization setpoint.
    double target_mhz = cur_mhz * util / config_.targetLoad;

    // hispeed jump: a saturated core pulls the clock at least up to
    // hispeed_freq immediately.
    if (util >= config_.hispeedLoad)
        target_mhz = std::max(target_mhz, config_.hispeedFreqMhz);

    size_t target_idx = table.nearestIndex(target_mhz);
    // Round up if the nearest OPP cannot serve the target.
    if (table.opp(target_idx).coreMhz < target_mhz &&
        target_idx < table.maxIndex())
        ++target_idx;

    if (target_idx > view.freqIndex) {
        // Ramping up is immediate.
        lastHighLoadSec_ = view.nowSec;
        return target_idx;
    }

    // Ramping down requires min_sample_time of sustained low load.
    if (util >= config_.targetLoad)
        lastHighLoadSec_ = view.nowSec;
    if (lastHighLoadSec_ >= 0.0 &&
        view.nowSec - lastHighLoadSec_ < config_.minSampleTimeSec)
        return view.freqIndex;
    return target_idx;
}

void
InteractiveGovernor::snapshot(SnapshotWriter &w) const
{
    w.beginSection("govi", 1);
    w.putDouble(lastHighLoadSec_);
}

bool
InteractiveGovernor::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("govi", 1))
        return false;
    double last_high;
    if (!r.getDouble(&last_high))
        return false;
    lastHighLoadSec_ = last_high;
    return true;
}

OndemandGovernor::OndemandGovernor(const OndemandConfig &config)
    : config_(config), name_("ondemand")
{
}

size_t
OndemandGovernor::decideFrequencyIndex(const GovernorView &view)
{
    const FreqTable &table = *view.freqTable;
    const double util = sanitizedUtilization(view.totalUtilization);
    if (util >= config_.upThreshold)
        return table.maxIndex();

    // Step down: the lowest frequency that would still keep the
    // equivalent load under (up_threshold - down_differential).
    const double cur_mhz = table.opp(view.freqIndex).coreMhz;
    const double needed_mhz = cur_mhz * util /
        std::max(0.05, config_.upThreshold - config_.downDifferential);
    size_t idx = table.nearestIndex(needed_mhz);
    if (table.opp(idx).coreMhz < needed_mhz && idx < table.maxIndex())
        ++idx;
    return idx;
}

} // namespace dora
