/**
 * @file
 * Time-stepped simulation kernel.
 *
 * Advances the SoC, device power, and all bound tasks in fixed ticks
 * (default 1 ms). The kernel is deliberately governor-agnostic: the
 * experiment harness interposes frequency decisions between ticks, which
 * keeps the layering identical to a real system (the governor is a
 * userspace daemon observing counters, not part of the hardware).
 */

#ifndef DORA_SIM_SIMULATOR_HH
#define DORA_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "power/device_power.hh"
#include "sim/task.hh"
#include "soc/soc.hh"

namespace dora
{

/** Simulation kernel configuration. */
struct SimConfig
{
    double dtSec = 1e-3;       //!< tick duration
    double maxSeconds = 30.0;  //!< hard wall for runUntil()
};

/** Everything that happened during one tick. */
struct TickTrace
{
    double nowSec = 0.0;  //!< time at the *end* of the tick
    SocTickSummary soc;
    PowerBreakdown power;
};

/**
 * Owns the tick loop. SoC and DevicePower are borrowed (the harness
 * constructs and owns them so experiments can introspect afterwards).
 */
class Simulator
{
  public:
    Simulator(Soc &soc, DevicePower &power, const SimConfig &config);

    /**
     * Pin @p task to @p core (non-owning; caller keeps the task alive).
     * Pass nullptr to leave the core idle.
     */
    void bindTask(uint32_t core, Task *task);

    /**
     * Execute exactly one tick. Returns a reference to an internal
     * trace buffer that is overwritten by the next step() — copy it if
     * it must outlive the tick. Reusing the buffer (and the demand
     * scratch vector) keeps the per-tick hot path allocation-free.
     */
    const TickTrace &step();

    /**
     * Run until @p stop returns true (checked after every tick) or
     * config().maxSeconds elapses.
     *
     * @param stop      stop predicate
     * @param on_tick   optional observer invoked after each tick
     * @return simulated seconds consumed by this call
     */
    double runUntil(const std::function<bool()> &stop,
                    const std::function<void(const TickTrace &)> &on_tick =
                        nullptr);

    /** Current simulated time in seconds. */
    double nowSec() const { return soc_.elapsedSeconds(); }

    /**
     * Ticks executed since construction (or the last reset()). The
     * only observability hook on the tick hot path: one increment, no
     * branch — the harness folds it into the metrics registry at run
     * granularity.
     */
    uint64_t tickCount() const { return tickCount_; }

    /** The SoC under simulation. */
    Soc &soc() { return soc_; }
    const Soc &soc() const { return soc_; }

    /** The device power integrator. */
    DevicePower &power() { return power_; }
    const DevicePower &power() const { return power_; }

    const SimConfig &config() const { return config_; }

    /**
     * Reset SoC, power, and all bound tasks for a fresh run (bindings
     * are kept).
     */
    void reset();

  private:
    Soc &soc_;
    DevicePower &power_;
    SimConfig config_;
    std::vector<Task *> tasks_;  //!< per core; nullptr = idle
    IdleTask idle_;
    /** Per-tick scratch, reused across ticks (see step()). */
    std::vector<TaskDemand> demands_;
    TickTrace trace_;
    uint64_t tickCount_ = 0;
};

} // namespace dora

#endif // DORA_SIM_SIMULATOR_HH
