/**
 * @file
 * Time-stepped simulation kernel.
 *
 * Advances the SoC, device power, and all bound tasks in fixed ticks
 * (default 1 ms). The kernel is deliberately governor-agnostic: the
 * experiment harness interposes frequency decisions between ticks, which
 * keeps the layering identical to a real system (the governor is a
 * userspace daemon observing counters, not part of the hardware).
 */

#ifndef DORA_SIM_SIMULATOR_HH
#define DORA_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "power/device_power.hh"
#include "sim/task.hh"
#include "soc/soc.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/** Simulation kernel configuration. */
struct SimConfig
{
    double dtSec = 1e-3;       //!< tick duration
    double maxSeconds = 30.0;  //!< hard wall for runUntil()
};

/** Everything that happened during one tick. */
struct TickTrace
{
    double nowSec = 0.0;  //!< time at the *end* of the tick
    SocTickSummary soc;
    PowerBreakdown power;
};

/**
 * Owns the tick loop. SoC and DevicePower are borrowed (the harness
 * constructs and owns them so experiments can introspect afterwards).
 */
class Simulator
{
  public:
    Simulator(Soc &soc, DevicePower &power, const SimConfig &config);

    /**
     * Pin @p task to @p core (non-owning; caller keeps the task alive).
     * Pass nullptr to leave the core idle.
     */
    void bindTask(uint32_t core, Task *task);

    /**
     * Execute exactly one tick. Returns a reference to an internal
     * trace buffer that is overwritten by the next step() — copy it if
     * it must outlive the tick. Reusing the buffer (and the demand
     * scratch vector) keeps the per-tick hot path allocation-free.
     */
    const TickTrace &step();

    /**
     * First half of step(): collect task demands and run Soc::tickBegin.
     * Returns true when the tick needs a hierarchy walk; the caller
     * must then run it (soc().tickWalkLocal(), or a fused walk via
     * soc().walkJob() + soc().tickWalkStore()) before stepFinish().
     * step() is exactly stepBegin + [tickWalkLocal] + stepFinish; the
     * split lets a lane batch fuse the walks of many simulators into
     * one MemSystem::tickSampleMany() call (DESIGN.md §5g).
     */
    bool stepBegin();

    /** Second half of step(): SoC finish, power, task advancement. */
    const TickTrace &stepFinish();

    /** Outcome of one fastForward() batch. */
    struct FastForwardResult
    {
        uint64_t ticks = 0;    //!< ticks actually executed
        bool stopped = false;  //!< per_tick returned true (early stop)
    };

    /**
     * Macro-tick fast-forward: advance up to @p max_ticks in one
     * batched call. Every tick applies the *identical* per-tick
     * arithmetic as step() — task demand and progress, sampled (or
     * reused) miss rates, DRAM demand, power, and thermal state — so a
     * K=1 batch is bit-for-bit equal to step(), and a K-tick batch is
     * bit-for-bit equal to K step() calls. The caller guarantees the
     * batch is *quiescent*: no external intervention (governor
     * decision, actuator retry, fault event) is due before the event
     * horizon implied by @p max_ticks.
     *
     * @param per_tick optional observer evaluated after every tick;
     *                 returning true stops the batch early (page
     *                 finished, stop predicate hit).
     */
    FastForwardResult
    fastForward(uint64_t max_ticks,
                const std::function<bool(const TickTrace &)> &per_tick =
                    nullptr);

    /**
     * Ticks until simulated time reaches @p target_sec, clamped to at
     * least one: the event-horizon helper for fastForward() callers.
     * Computed conservatively (never overshoots the first tick whose
     * *pre-tick* time is >= target), so horizon boundaries land on
     * exactly the tick edges the legacy 1-tick loop would observe.
     */
    uint64_t ticksUntil(double target_sec) const;

    /**
     * Run until @p stop returns true (checked after every tick) or
     * config().maxSeconds elapses.
     *
     * @param stop      stop predicate
     * @param on_tick   optional observer invoked after each tick
     * @return simulated seconds consumed by this call
     */
    double runUntil(const std::function<bool()> &stop,
                    const std::function<void(const TickTrace &)> &on_tick =
                        nullptr);

    /** Current simulated time in seconds. */
    double nowSec() const { return soc_.elapsedSeconds(); }

    /**
     * Ticks executed since construction (or the last reset()). The
     * only observability hook on the tick hot path: one increment, no
     * branch — the harness folds it into the metrics registry at run
     * granularity.
     */
    uint64_t tickCount() const { return tickCount_; }

    /** fastForward() calls with max_ticks > 1 since construction. */
    uint64_t macroBatches() const { return macroBatches_; }

    /** Ticks executed inside batched (max_ticks > 1) fast-forwards. */
    uint64_t macroBatchedTicks() const { return macroBatchedTicks_; }

    /** The SoC under simulation. */
    Soc &soc() { return soc_; }
    const Soc &soc() const { return soc_; }

    /** The device power integrator. */
    DevicePower &power() { return power_; }
    const DevicePower &power() const { return power_; }

    const SimConfig &config() const { return config_; }

    /**
     * Reset SoC, power, and all bound tasks for a fresh run (bindings
     * are kept).
     */
    void reset();

    /**
     * Serialize tick counters plus the borrowed SoC and power state.
     * Bound tasks are NOT covered (they are borrowed, polymorphic, and
     * own their streams) — the caller checkpoints them separately.
     */
    void snapshot(SnapshotWriter &w) const;

    /** Restore a snapshot; false on section/version mismatch. */
    [[nodiscard]] bool tryRestore(SnapshotReader &r);

  private:
    Soc &soc_;
    DevicePower &power_;
    SimConfig config_;  // dora:snapshot-exclude(construction config)
    // dora:snapshot-exclude(task bindings, re-established by the owner)
    std::vector<Task *> tasks_;  //!< per core; nullptr = idle
    IdleTask idle_;  // dora:snapshot-exclude(stateless placeholder task)
    /** Per-tick scratch, reused across ticks (see step()). */
    std::vector<TaskDemand> demands_;  // dora:snapshot-exclude(scratch)
    // dora:snapshot-exclude(per-tick trace, rewritten by every step)
    TickTrace trace_;
    uint64_t tickCount_ = 0;
    uint64_t macroBatches_ = 0;
    uint64_t macroBatchedTicks_ = 0;
};

} // namespace dora

#endif // DORA_SIM_SIMULATOR_HH
