/**
 * @file
 * The unit of execution the simulator schedules onto cores.
 *
 * A Task is anything that occupies a core: a browser render thread, a
 * co-scheduled Rodinia-style kernel, or an idle placeholder. Tasks are
 * pinned to cores by the experiment harness (matching the paper's
 * methodology: Firefox on two cores, the co-runner on the third, the
 * fourth core switched off).
 */

#ifndef DORA_SIM_TASK_HH
#define DORA_SIM_TASK_HH

#include <string>

#include "soc/core_model.hh"

namespace dora
{

class SnapshotReader;
class SnapshotWriter;

/**
 * Abstract task. Implementations own their address streams and phase
 * state; the simulator pulls a TaskDemand each tick and pushes back the
 * achieved TickResult.
 */
class Task
{
  public:
    virtual ~Task() = default;

    /** Demand for the upcoming tick at simulated time @p now_sec. */
    virtual TaskDemand demand(double now_sec) = 0;

    /** Consume the achieved execution for the tick just simulated. */
    virtual void advance(const TickResult &result, double dt_sec) = 0;

    /** True when the task has no more work (ever). */
    virtual bool finished() const = 0;

    /** Human-readable name for logs and tables. */
    virtual const std::string &name() const = 0;

    /** Restart the task from the beginning (new experiment run). */
    virtual void reset() = 0;

    /**
     * Serialize mutable task state (streams, retired work, phase
     * clocks) for mid-run checkpointing. The default writes an empty
     * marker section, which is correct only for stateless tasks
     * (IdleTask); stateful implementations must override both hooks or
     * a restored run will diverge.
     */
    virtual void snapshot(SnapshotWriter &w) const;

    /** Restore state written by snapshot(); false on mismatch. */
    [[nodiscard]] virtual bool tryRestore(SnapshotReader &r);
};

/**
 * A task that never demands the core; used for switched-off or idle
 * cores.
 */
class IdleTask : public Task
{
  public:
    IdleTask();

    TaskDemand demand(double now_sec) override;
    void advance(const TickResult &result, double dt_sec) override;
    bool finished() const override { return false; }
    const std::string &name() const override { return name_; }
    void reset() override {}

  private:
    std::string name_;
};

} // namespace dora

#endif // DORA_SIM_TASK_HH
