#include "sim/task.hh"

namespace dora
{

IdleTask::IdleTask()
    : name_("idle")
{
}

TaskDemand
IdleTask::demand(double now_sec)
{
    (void)now_sec;
    TaskDemand d;
    d.active = false;
    return d;
}

void
IdleTask::advance(const TickResult &result, double dt_sec)
{
    (void)result;
    (void)dt_sec;
}

} // namespace dora
