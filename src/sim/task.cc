#include "sim/task.hh"

#include "common/snapshot.hh"

namespace dora
{

void
Task::snapshot(SnapshotWriter &w) const
{
    w.beginSection("tsk0", 1);
}

bool
Task::tryRestore(SnapshotReader &r)
{
    return r.beginSection("tsk0", 1);
}

IdleTask::IdleTask()
    : name_("idle")
{
}

TaskDemand
IdleTask::demand(double now_sec)
{
    (void)now_sec;
    TaskDemand d;
    d.active = false;
    return d;
}

void
IdleTask::advance(const TickResult &result, double dt_sec)
{
    (void)result;
    (void)dt_sec;
}

} // namespace dora
