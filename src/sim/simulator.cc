#include "sim/simulator.hh"

#include "common/logging.hh"

namespace dora
{

Simulator::Simulator(Soc &soc, DevicePower &power, const SimConfig &config)
    : soc_(soc), power_(power), config_(config),
      tasks_(soc.numCores(), nullptr)
{
    if (config.dtSec <= 0.0 || config.maxSeconds <= 0.0)
        fatal("Simulator: non-positive dt or maxSeconds");
}

void
Simulator::bindTask(uint32_t core, Task *task)
{
    if (core >= tasks_.size())
        panic("Simulator::bindTask: core %u out of range", core);
    tasks_[core] = task;
}

const TickTrace &
Simulator::step()
{
    auto &demands = demands_;
    demands.clear();
    demands.reserve(tasks_.size());
    const double now = soc_.elapsedSeconds();
    for (auto *task : tasks_) {
        Task &t = task ? *task : idle_;
        demands.push_back(t.finished() ? idle_.demand(now)
                                       : t.demand(now));
    }

    TickTrace &trace = trace_;
    soc_.tick(demands, config_.dtSec, trace.soc);
    trace.power = power_.step(trace.soc, config_.dtSec);
    trace.nowSec = soc_.elapsedSeconds();
    ++tickCount_;

    for (size_t c = 0; c < tasks_.size(); ++c) {
        if (tasks_[c] && !tasks_[c]->finished())
            tasks_[c]->advance(trace.soc.perCore[c], config_.dtSec);
    }
    return trace;
}

double
Simulator::runUntil(const std::function<bool()> &stop,
                    const std::function<void(const TickTrace &)> &on_tick)
{
    const double start = nowSec();
    while (!stop()) {
        if (nowSec() - start >= config_.maxSeconds) {
            warn("Simulator::runUntil hit the %g s wall",
                 config_.maxSeconds);
            break;
        }
        const TickTrace &trace = step();
        if (on_tick)
            on_tick(trace);
    }
    return nowSec() - start;
}

void
Simulator::reset()
{
    soc_.reset();
    power_.reset();
    tickCount_ = 0;
    for (auto *task : tasks_)
        if (task)
            task->reset();
}

} // namespace dora
