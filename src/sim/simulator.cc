#include "sim/simulator.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/snapshot.hh"

namespace dora
{

Simulator::Simulator(Soc &soc, DevicePower &power, const SimConfig &config)
    : soc_(soc), power_(power), config_(config),
      tasks_(soc.numCores(), nullptr)
{
    if (config.dtSec <= 0.0 || config.maxSeconds <= 0.0)
        fatal("Simulator: non-positive dt or maxSeconds");
}

void
Simulator::bindTask(uint32_t core, Task *task)
{
    if (core >= tasks_.size())
        panic("Simulator::bindTask: core %u out of range", core);
    tasks_[core] = task;
}

const TickTrace &
Simulator::step()
{
    if (stepBegin())
        soc_.tickWalkLocal();
    return stepFinish();
}

bool
Simulator::stepBegin()
{
    auto &demands = demands_;
    demands.clear();
    demands.reserve(tasks_.size());
    const double now = soc_.elapsedSeconds();
    for (auto *task : tasks_) {
        Task &t = task ? *task : idle_;
        demands.push_back(t.finished() ? idle_.demand(now)
                                       : t.demand(now));
    }
    return soc_.tickBegin(demands, config_.dtSec);
}

const TickTrace &
Simulator::stepFinish()
{
    TickTrace &trace = trace_;
    soc_.tickFinish(config_.dtSec, trace.soc);
    trace.power = power_.step(trace.soc, config_.dtSec);
    trace.nowSec = soc_.elapsedSeconds();
    ++tickCount_;

    for (size_t c = 0; c < tasks_.size(); ++c) {
        if (tasks_[c] && !tasks_[c]->finished())
            tasks_[c]->advance(trace.soc.perCore[c], config_.dtSec);
    }
    return trace;
}

Simulator::FastForwardResult
Simulator::fastForward(uint64_t max_ticks,
                       const std::function<bool(const TickTrace &)> &per_tick)
{
    FastForwardResult result;
    if (max_ticks > 1) {
        ++macroBatches_;
    }
    while (result.ticks < max_ticks) {
        const TickTrace &trace = step();
        ++result.ticks;
        if (per_tick && per_tick(trace)) {
            result.stopped = true;
            break;
        }
    }
    if (max_ticks > 1)
        macroBatchedTicks_ += result.ticks;
    return result;
}

uint64_t
Simulator::ticksUntil(double target_sec) const
{
    // Conservative floor: FP error in the accumulated clock is a few
    // ulps (~1e-9 ticks), far below the margin, so the batch can land
    // at most one tick short of the boundary — never past it. The
    // caller's loop re-checks its condition and single-steps the rest.
    const double ticks =
        std::floor((target_sec - nowSec()) / config_.dtSec - 1e-6);
    if (ticks < 1.0)
        return 1;
    return static_cast<uint64_t>(ticks);
}

double
Simulator::runUntil(const std::function<bool()> &stop,
                    const std::function<void(const TickTrace &)> &on_tick)
{
    const double start = nowSec();
    const double wall_sec = start + config_.maxSeconds;
    while (!stop()) {
        if (nowSec() - start >= config_.maxSeconds) {
            warn("Simulator::runUntil hit the %g s wall",
                 config_.maxSeconds);
            break;
        }
        // Event horizon: the maxSeconds wall. @p stop stays a per-tick
        // check (documented contract), folded into the batch observer,
        // so batching changes neither the stop tick nor the number of
        // stop() evaluations.
        fastForward(ticksUntil(wall_sec),
                    [&](const TickTrace &trace) {
                        if (on_tick)
                            on_tick(trace);
                        return stop();
                    });
    }
    return nowSec() - start;
}

void
Simulator::reset()
{
    soc_.reset();
    power_.reset();
    tickCount_ = 0;
    for (auto *task : tasks_)
        if (task)
            task->reset();
}

void
Simulator::snapshot(SnapshotWriter &w) const
{
    w.beginSection("sim ", 1);
    w.putU64(tickCount_);
    w.putU64(macroBatches_);
    w.putU64(macroBatchedTicks_);
    soc_.snapshot(w);
    power_.snapshot(w);
}

bool
Simulator::tryRestore(SnapshotReader &r)
{
    if (!r.beginSection("sim ", 1))
        return false;
    uint64_t ticks, batches, batched;
    if (!r.getU64(&ticks) || !r.getU64(&batches) || !r.getU64(&batched))
        return false;
    if (!soc_.tryRestore(r) || !power_.tryRestore(r))
        return false;
    tickCount_ = ticks;
    macroBatches_ = batches;
    macroBatchedTicks_ = batched;
    return true;
}

} // namespace dora
