/**
 * @file
 * LaneBatchSimulator: advance N independent measurement runs ("lanes")
 * interleaved on one thread.
 *
 * Why: one run at a time leaves the core idle on every L2/DRAM miss
 * chain of the cache-walk inner loop. Packing N independent runs into
 * one thread lets their miss chains overlap — while lane A's walk
 * stalls on DRAM, lane B's walk issues its own loads — converting
 * memory-level parallelism across runs into throughput, exactly like
 * SIMD lanes convert data parallelism (hence the name).
 *
 * Scheduling:
 *  - exact-ticks mode: all lanes advance in lock-step rounds of
 *    RunContext::advanceBegin(); every lane whose step needs a memory
 *    walk contributes a MemSystem::WalkJob, the jobs run as ONE fused
 *    cross-lane batch (MemSystem::tickSampleMany interleaves the
 *    shared-L2 drain passes), then each lane completes with
 *    advanceFinish(). Per-lane pass order is unchanged, so results are
 *    bit-identical to running each lane alone.
 *  - adaptive mode: per-lane macro-tick horizons differ, so fusion is
 *    off; lanes advance round-robin, one quantum (one macro-tick
 *    batch) each, until all retire. The quantum boundary is a pure
 *    scheduling choice — per-lane arithmetic is untouched.
 *
 * Lanes retire independently (page complete, window wall, censor); the
 * batch keeps advancing the survivors. lanes=1 is the exact legacy
 * path: no batched walk, no fusion, identical instruction sequence.
 */

#ifndef DORA_SIM_LANE_BATCH_HH
#define DORA_SIM_LANE_BATCH_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "mem/mem_system.hh"
#include "runner/experiment.hh"
#include "runner/run_context.hh"

namespace dora
{

/**
 * Owns N RunContexts and drives them to completion as one batch.
 */
class LaneBatchSimulator
{
  public:
    /**
     * One lane of a heterogeneous batch: its own device config (the
     * fleet tier batches different simulated devices together) plus
     * the usual run parameters. Configs may differ only in scalar
     * device knobs — the memory geometry is shared by construction
     * (SocConfig comes from the campaign base), which is what keeps
     * the fused cross-lane walk valid.
     */
    struct LaneSpec
    {
        ExperimentConfig config;
        RunContext::Params params;
    };

    /**
     * Build one lane per spec. With more than one lane, each lane's
     * MemSystem runs the batched walk (bit-identical to interleaved by
     * the BatchedWalk contract tests); a single lane keeps the legacy
     * interleaved walk so lanes=1 is byte-for-byte the serial path.
     */
    LaneBatchSimulator(const ExperimentConfig &config,
                       std::vector<RunContext::Params> specs);

    /** Same, with a per-lane device config (fleet campaigns). */
    explicit LaneBatchSimulator(const std::vector<LaneSpec> &specs);

    /** Number of lanes (live + retired). */
    size_t size() const { return lanes_.size(); }

    /** Lane access (tests snapshot/restore individual lanes). */
    RunContext &lane(size_t i) { return *lanes_[i]; }

    /** Advance every live lane until all have retired. */
    void runAll();

    /**
     * One scheduling round: every live lane advances one quantum (one
     * fused tick in exact mode, one macro-tick batch otherwise).
     * Returns false when no lane is live (all retired).
     */
    bool tickAll();

    /** Finish every lane and return the measurements in lane order. */
    std::vector<RunMeasurement> finishAll();

  private:
    void finishInit();
    bool tickAllFused();

    std::vector<std::unique_ptr<RunContext>> lanes_;
    bool exact_ = false;

    // Per-round scratch, reused across rounds (no steady-state
    // allocation).
    std::vector<MemSystem::WalkJob> jobs_;
    std::vector<size_t> walkLanes_;
    std::vector<size_t> stepLanes_;
};

} // namespace dora

#endif // DORA_SIM_LANE_BATCH_HH
