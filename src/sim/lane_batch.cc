#include "sim/lane_batch.hh"

#include "common/logging.hh"

namespace dora
{

LaneBatchSimulator::LaneBatchSimulator(
    const ExperimentConfig &config, std::vector<RunContext::Params> specs)
{
    if (specs.empty())
        fatal("LaneBatchSimulator: no lanes");
    lanes_.reserve(specs.size());
    for (const auto &spec : specs)
        lanes_.push_back(std::make_unique<RunContext>(config, spec));
    finishInit();
}

LaneBatchSimulator::LaneBatchSimulator(const std::vector<LaneSpec> &specs)
{
    if (specs.empty())
        fatal("LaneBatchSimulator: no lanes");
    lanes_.reserve(specs.size());
    for (const auto &spec : specs)
        lanes_.push_back(
            std::make_unique<RunContext>(spec.config, spec.params));
    finishInit();
}

void
LaneBatchSimulator::finishInit()
{
    exact_ = lanes_.front()->exactTicks();
    if (lanes_.size() > 1)
        for (auto &lane : lanes_)
            lane->soc().mem().setBatchedWalk(true);
}

bool
LaneBatchSimulator::tickAll()
{
    if (exact_ && lanes_.size() > 1)
        return tickAllFused();
    bool any_live = false;
    for (auto &lane : lanes_) {
        if (lane->done())
            continue;
        any_live = true;
        lane->advance();
    }
    return any_live;
}

bool
LaneBatchSimulator::tickAllFused()
{
    // Lock-step round: begin every live lane's step, fuse the pending
    // memory walks into one cross-lane batch, then finish every step.
    jobs_.clear();
    walkLanes_.clear();
    stepLanes_.clear();
    for (size_t i = 0; i < lanes_.size(); ++i) {
        RunContext &lane = *lanes_[i];
        if (lane.done())
            continue;
        const RunContext::StepPlan plan = lane.advanceBegin();
        if (plan == RunContext::StepPlan::Finished)
            continue;
        stepLanes_.push_back(i);
        if (plan == RunContext::StepPlan::Walk) {
            jobs_.push_back(lane.soc().walkJob());
            walkLanes_.push_back(i);
        }
    }
    if (stepLanes_.empty())
        return false;
    if (!jobs_.empty())
        MemSystem::tickSampleMany(jobs_.data(), jobs_.size());
    for (size_t i : walkLanes_)
        lanes_[i]->soc().tickWalkStore();
    for (size_t i : stepLanes_)
        lanes_[i]->advanceFinish();
    return true;
}

void
LaneBatchSimulator::runAll()
{
    while (tickAll()) {
    }
}

std::vector<RunMeasurement>
LaneBatchSimulator::finishAll()
{
    runAll();
    std::vector<RunMeasurement> out;
    out.reserve(lanes_.size());
    for (auto &lane : lanes_)
        out.push_back(lane->finish());
    return out;
}

} // namespace dora
