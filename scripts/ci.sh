#!/usr/bin/env bash
# Single-entry CI pipeline: configure + build, run the lint stage
# (dora-lint zero-findings gate, clang-tidy, clang thread-safety
# build), run the full test suite, sweep the sanitizer builds, gate
# the adaptive fast path's accuracy against exact-ticks mode, and
# gate the simulation hot path against the recorded
# BENCH_parallel.json baseline so tick-rate regressions (e.g. from
# observability instrumentation) fail loudly.
#
# Usage: scripts/ci.sh [--skip-sanitizers] [--build-dir DIR]
#
# Environment:
#   DORA_SKIP_LINT=1         skip the whole lint stage (dora-lint,
#                            clang-tidy, thread-safety build)
#   DORA_SKIP_ANALYZE=1      skip the dora-analyze stage (structural
#                            cross-TU gate: hash/snapshot coverage,
#                            stream-tag uniqueness, serialized-layout
#                            versioning, CLI-flag parsing)
#   DORA_CI_HOTPATH_TOL_PCT  allowed ticks/sec regression vs the
#                            baseline, percent (default 5; wall-clock
#                            measurements on shared hosts are noisy,
#                            so widen it there rather than deleting
#                            the gate); applies to the adaptive AND
#                            the exact-ticks floor
#   DORA_CI_LANE_SPEEDUP_MIN minimum exact-mode lanes=8 / lanes=1
#                            aggregate tick-rate ratio (default 1.5 —
#                            the recorded ratio is ~2x, the floor is
#                            set below the worst noise swing)
#   DORA_CI_FLEET_TOL_PCT    allowed fleet devices/s regression vs
#                            the BENCH_parallel.json baseline, percent
#                            (default 10; the fleet stage is a single
#                            short campaign, noisier than the hotpath
#                            rate)
#   DORA_CI_SKIP_NATIVE=1    skip the -march=native build leg
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
skip_sanitizers=0
while [[ $# -gt 0 ]]; do
    case "$1" in
        --skip-sanitizers) skip_sanitizers=1; shift ;;
        --build-dir) build_dir="$2"; shift 2 ;;
        --build-dir=*) build_dir="${1#--build-dir=}"; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

echo "== build =="
cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)"

if [[ "${DORA_SKIP_LINT:-0}" -eq 1 ]]; then
    echo "== lint == (skipped: DORA_SKIP_LINT=1)"
else
    echo "== lint: dora-lint =="
    # Zero-findings gate over the project invariant rules. Suppress
    # intentional exceptions inline with // NOLINT(dora-rule-id),
    # never here.
    "${build_dir}/tools/lint/dora-lint" --repo "${repo_root}"

    echo "== lint: clang-tidy =="
    if command -v clang-tidy >/dev/null 2>&1; then
        # Library + tool sources only; tests/benches get coverage via
        # the dora-lint walk and the compiler's -Werror.
        (cd "${repo_root}" &&
            find src tools -name '*.cc' -print0 |
            xargs -0 -P "$(nproc)" -n 8 \
                clang-tidy -p "${build_dir}" --quiet \
                --warnings-as-errors='*')
    else
        echo "NOTICE: clang-tidy not installed; skipping the" \
             ".clang-tidy check set. Install clang-tidy to run the" \
             "full lint stage."
    fi

    echo "== lint: clang thread-safety =="
    clangxx="$(command -v clang++ || true)"
    if [[ -n "${clangxx}" ]]; then
        # Dedicated clang build tree with -Wthread-safety; -Werror is
        # already global, so any capability violation fails the build.
        ts_dir="${repo_root}/build-threadsafety"
        cmake -B "${ts_dir}" -S "${repo_root}" \
            -DCMAKE_CXX_COMPILER="${clangxx}" \
            -DDORA_THREAD_SAFETY=ON >/dev/null
        cmake --build "${ts_dir}" -j "$(nproc)"
    else
        echo "**********************************************************"
        echo "NOTICE: clang++ not installed — the thread-safety"
        echo "annotation leg of the lint stage CANNOT run. GCC compiles"
        echo "GUARDED_BY/REQUIRES/EXCLUDES to no-ops, so nothing is"
        echo "being checked. Install clang to restore this gate."
        echo "**********************************************************"
    fi
fi

if [[ "${DORA_SKIP_ANALYZE:-0}" -eq 1 ]]; then
    echo "== analyze == (skipped: DORA_SKIP_ANALYZE=1)"
else
    echo "== analyze: dora-analyze =="
    # Zero-findings gate over the cross-TU structural rules
    # (DESIGN.md §5j): config-hash coverage, snapshot/restore member
    # coverage, RNG stream-tag uniqueness, serialized-layout version
    # freshness against tools/analyze/serialized_layouts.json, and
    # CLI-flag parsing locality. Annotate intentional exceptions
    # inline (// dora:<rule-annotation>(<reason>)) or bless layout
    # bumps with `dora-analyze --regen-manifest`, never here. The
    # --json artifact is kept for build-log consumers.
    "${build_dir}/tools/analyze/dora-analyze" --repo "${repo_root}" \
        --json "${build_dir}/analyze-findings.json"
fi

echo "== tests =="
(cd "${build_dir}" && ctest --output-on-failure)

echo "== crash: process-tier resilience =="
# Named gate over the crash-resilience ladder (DESIGN.md §5f): wire
# protocol corruption handling, journal torn-tail truncation,
# worker/supervisor SIGKILL + retry + journal resume (byte-identical
# to --workers=0), stale bundle-cache lock recovery, and the
# truncated-trace flush of a signalled bench. The same suites also
# run under ASan/UBSan (full sweep below) and the supervisor suites
# under TSan (default TSan scope in run_sanitized_tests.sh).
(cd "${build_dir}" && ctest --output-on-failure \
    -R 'ProcWire|ProcJournalTest|ProcSupervisorTest|KillResume|BundleCacheLockTest|ObsGuardSignal')

echo "== fleet: campaign determinism + checkpoint resume =="
# Rollout under model-free governors (no trained bundle needed):
# byte-identity across the (jobs, workers, lanes) tier matrix,
# mid-campaign SIGKILL + aggregate-checkpoint resume, cohort-count
# conservation, and the bench's own peak-RSS ceiling. fleet_rollout
# exits non-zero on any violation; the short load wall keeps the
# stage to minutes (a censored page is still a deterministic
# measurement). Device count matches the run_benches.sh recording so
# the serial reference pass's devices/s is comparable to the
# baseline, which gates throughput below.
fleet_log="$(mktemp)"
"${build_dir}/bench/fleet_rollout" --fleet-devices 120 \
    --fleet-governors interactive,ondemand --fleet-max-load 1.0 \
    | tee "${fleet_log}"

echo "== fleet throughput gate =="
# Same mechanism as the hot-path floor: the serial reference pass's
# devices/s must stay within DORA_CI_FLEET_TOL_PCT of the recorded
# BENCH_parallel.json baseline.
fleet_baseline="$(sed -n \
    '/"fleet_rollout"/,/}/s/.*"devices_per_sec": *\([0-9.]*\).*/\1/p' \
    "${repo_root}/BENCH_parallel.json" 2>/dev/null || true)"
if [[ -z "${fleet_baseline}" ]]; then
    echo "warning: no fleet_rollout baseline in BENCH_parallel.json;" \
         "skipping the fleet floor (run scripts/run_benches.sh)"
else
    fleet_tol_pct="${DORA_CI_FLEET_TOL_PCT:-10}"
    fleet_rate="$(awk '$1=="FLEET" && $2=="jobs=1" && $3=="workers=0" && \
        $4=="lanes=1" {sub("devices_per_sec=","",$6); print $6}' \
        "${fleet_log}")"
    fleet_floor="$(awk -v b="${fleet_baseline}" -v t="${fleet_tol_pct}" \
        'BEGIN{printf "%.2f", b * (100 - t) / 100}')"
    echo "fleet devices/s: measured ${fleet_rate}," \
         "baseline ${fleet_baseline}, floor ${fleet_floor}" \
         "(tolerance ${fleet_tol_pct}%)"
    fleet_ok="$(awk -v r="${fleet_rate}" -v f="${fleet_floor}" \
        'BEGIN{print (r >= f) ? 1 : 0}')"
    if [[ "${fleet_ok}" -ne 1 ]]; then
        echo "error: fleet devices/s regressed beyond" \
             "${fleet_tol_pct}%" >&2
        exit 1
    fi
fi
rm -f "${fleet_log}"

if [[ "${DORA_CI_SKIP_NATIVE:-0}" -eq 1 ]]; then
    echo "== native codegen leg == (skipped: DORA_CI_SKIP_NATIVE=1)"
else
    echo "== native codegen leg (-DDORA_NATIVE=ON) =="
    # The main build above is the portable scalar leg; this dedicated
    # tree proves the host-tuned build compiles clean under -Werror
    # and still honors the lane-tier bit-identity contract (the
    # LaneBatch/BatchedWalk suites compare lanes=N against the serial
    # path inside the same binary).
    native_dir="${repo_root}/build-native"
    cmake -B "${native_dir}" -S "${repo_root}" -DDORA_NATIVE=ON \
        >/dev/null
    cmake --build "${native_dir}" -j "$(nproc)"
    (cd "${native_dir}" && ctest --output-on-failure \
        -R 'LaneBatch|BatchedWalk')
fi

if [[ "${skip_sanitizers}" -eq 0 ]]; then
    echo "== sanitizers: address,undefined =="
    "${repo_root}/scripts/run_sanitized_tests.sh"
    echo "== sanitizers: thread =="
    "${repo_root}/scripts/run_sanitized_tests.sh" --sanitize=thread
fi

echo "== adaptive accuracy gate =="
# Exact-vs-adaptive contract: governor rankings preserved, per-cell
# load-time/PPW deltas <= 1 %, deadline/censoring verdicts identical.
# The bench exits non-zero on any violation.
"${build_dir}/bench/ext_adaptive_accuracy"

echo "== hot-path overhead gate =="
baseline_json="${repo_root}/BENCH_parallel.json"
baseline="$(sed -n '/"ovh_hotpath"/,/}/s/.*"ticks_per_sec": *\([0-9]*\).*/\1/p' \
    "${baseline_json}")"
if [[ -z "${baseline}" ]]; then
    echo "warning: no ovh_hotpath baseline in ${baseline_json};" \
         "skipping the gate (run scripts/run_benches.sh to record one)"
    exit 0
fi
# --benchmark_filter that matches nothing skips the google-benchmark
# timings; printTickRate (the gated number) always runs. Tracing stays
# disabled — this measures the instrumented-but-off hot path.
tol_pct="${DORA_CI_HOTPATH_TOL_PCT:-5}"
hotpath_log="$(mktemp)"
"${build_dir}/bench/ovh_hotpath" '--benchmark_filter=^$' \
    > "${hotpath_log}"
ticks="$(awk '/^HOTPATH_TICKS_PER_SEC/{print $2}' "${hotpath_log}")"
floor="$(awk -v b="${baseline}" -v t="${tol_pct}" \
    'BEGIN{printf "%d", b * (100 - t) / 100}')"
echo "ticks/sec (adaptive): measured ${ticks}, baseline ${baseline}," \
     "floor ${floor} (tolerance ${tol_pct}%)"
if [[ "${ticks}" -lt "${floor}" ]]; then
    echo "error: hot-path tick rate regressed beyond ${tol_pct}%" >&2
    exit 1
fi

# Exact-ticks floor: the lock-step path is the offline-opt/training
# hot loop and regresses independently of the adaptive fast path
# (e.g. from batched-walk changes), so it gets its own gate.
baseline_exact="$(sed -n \
    '/"ovh_hotpath"/,/}/s/.*"ticks_per_sec_exact": *\([0-9]*\).*/\1/p' \
    "${baseline_json}")"
if [[ -z "${baseline_exact}" ]]; then
    echo "warning: no exact-ticks baseline in ${baseline_json};" \
         "skipping the exact floor (run scripts/run_benches.sh)"
else
    "${build_dir}/bench/ovh_hotpath" --exact-ticks \
        '--benchmark_filter=^$' > "${hotpath_log}"
    ticks_exact="$(awk '/^HOTPATH_TICKS_PER_SEC/{print $2}' \
        "${hotpath_log}")"
    floor_exact="$(awk -v b="${baseline_exact}" -v t="${tol_pct}" \
        'BEGIN{printf "%d", b * (100 - t) / 100}')"
    echo "ticks/sec (exact): measured ${ticks_exact}," \
         "baseline ${baseline_exact}, floor ${floor_exact}" \
         "(tolerance ${tol_pct}%)"
    if [[ "${ticks_exact}" -lt "${floor_exact}" ]]; then
        echo "error: exact-ticks rate regressed beyond ${tol_pct}%" >&2
        exit 1
    fi

    # Lane-tier speedup: a ratio gate (lanes=8 vs lanes=1, exact
    # fused path, same run) is robust to host-wide slowdown in a way
    # absolute floors are not.
    lanes1="$(awk '$1=="HOTPATH_LANE_TICKS_PER_SEC" && $2=="lanes=1" \
        {print $3}' "${hotpath_log}")"
    lanes8="$(awk '$1=="HOTPATH_LANE_TICKS_PER_SEC" && $2=="lanes=8" \
        {print $3}' "${hotpath_log}")"
    speedup_min="${DORA_CI_LANE_SPEEDUP_MIN:-1.5}"
    speedup="$(awk -v a="${lanes1}" -v b="${lanes8}" \
        'BEGIN{printf "%.2f", b / a}')"
    echo "lane speedup (exact, lanes=8 vs lanes=1): ${speedup}" \
         "(floor ${speedup_min})"
    ok="$(awk -v s="${speedup}" -v m="${speedup_min}" \
        'BEGIN{print (s >= m) ? 1 : 0}')"
    if [[ "${ok}" -ne 1 ]]; then
        echo "error: lane-batched speedup below ${speedup_min}x" >&2
        exit 1
    fi
fi
rm -f "${hotpath_log}"
echo "ci: all gates passed"
