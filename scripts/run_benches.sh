#!/usr/bin/env bash
# Run the perf-tracked benches and record a machine-readable snapshot in
# BENCH_parallel.json so successive PRs have a performance trajectory:
#
#   - bench/ext_parallel_scaling: wall-clock of the fig07 slice at
#     jobs=1 and jobs=N plus the byte-identity self-check
#   - bench/ovh_hotpath: sustained simulator ticks/sec on the default
#     adaptive path AND under --exact-ticks (hot-path guards), plus
#     the aggregate lane-ticks/sec of the lane-batched tier at
#     N in {1,4,8,16} runs per batch in both modes
#   - bench/ovh_memsample: ns per sampled cache access + per stream draw
#   - bench/fleet_rollout: fleet campaign devices/s (serial reference
#     pass) and peak RSS, plus its tier byte-identity +
#     checkpoint-resume + bounded-memory self-checks
#   - fig01/fig03: serial wall-clock of the two cheapest paper figures
#
# Usage: scripts/run_benches.sh [--jobs N] [--build-dir DIR]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
jobs="$(nproc)"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --jobs) jobs="$2"; shift 2 ;;
        --jobs=*) jobs="${1#--jobs=}"; shift ;;
        --build-dir) build_dir="$2"; shift 2 ;;
        --build-dir=*) build_dir="${1#--build-dir=}"; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" --target \
    ext_parallel_scaling ovh_hotpath ovh_memsample fleet_rollout \
    fig01_interference_loadtime fig03_fopt_tradeoff >/dev/null

bench="${build_dir}/bench"
out="${repo_root}/BENCH_parallel.json"

echo "== ext_parallel_scaling (jobs=${jobs}) =="
scaling_log="$(mktemp)"
"${bench}/ext_parallel_scaling" --jobs "${jobs}" | tee "${scaling_log}"
# First/last match: on a 1-thread host both runs print "jobs=1".
wall_serial="$(awk '/^SCALING jobs=1 /{sub("wall=","",$3); print $3; exit}' \
    "${scaling_log}")"
wall_parallel="$(awk -v j="${jobs}" \
    '$1=="SCALING" && $2=="jobs="j {sub("wall=","",$3); v=$3} END{print v}' \
    "${scaling_log}")"
speedup="$(awk '/^SCALING speedup=/{sub("speedup=","",$2); print $2}' \
    "${scaling_log}")"
identical="$(awk '/^SCALING speedup=/{sub("identical=","",$3); print $3}' \
    "${scaling_log}")"
[[ "${identical}" == "1" ]] && identical=true || identical=false
# Process-tier row: the same slice sharded over worker subprocesses
# (checkpoint/resume path); identical above also covers its bytes.
workers_n="$(awk '/^SCALING workers=/{sub("workers=","",$2); print $2}' \
    "${scaling_log}")"
wall_workers="$(awk '/^SCALING workers=/{sub("wall=","",$3); print $3}' \
    "${scaling_log}")"
# Lane-tier row: the same slice advanced 4 runs per batch (--lanes=4).
wall_lanes="$(awk '/^SCALING lanes=/{sub("wall=","",$3); print $3}' \
    "${scaling_log}")"
rm -f "${scaling_log}"

# HOTPATH_LANE_TICKS_PER_SEC lanes=N <rate> row of one ovh_hotpath log.
lane_rate() {
    awk -v n="$2" \
        '$1=="HOTPATH_LANE_TICKS_PER_SEC" && $2=="lanes="n {print $3}' \
        "$1"
}

echo "== ovh_hotpath (adaptive) =="
hotpath_log="$(mktemp)"
"${bench}/ovh_hotpath" --benchmark_min_time=0.1s | tee "${hotpath_log}"
ticks="$(awk '/^HOTPATH_TICKS_PER_SEC /{print $2}' "${hotpath_log}")"
lanes1="$(lane_rate "${hotpath_log}" 1)"
lanes4="$(lane_rate "${hotpath_log}" 4)"
lanes8="$(lane_rate "${hotpath_log}" 8)"
lanes16="$(lane_rate "${hotpath_log}" 16)"

echo "== ovh_hotpath (--exact-ticks) =="
"${bench}/ovh_hotpath" --exact-ticks --benchmark_filter=NONE \
    | tee "${hotpath_log}"
ticks_exact="$(awk '/^HOTPATH_TICKS_PER_SEC /{print $2}' \
    "${hotpath_log}")"
lanes1_exact="$(lane_rate "${hotpath_log}" 1)"
lanes4_exact="$(lane_rate "${hotpath_log}" 4)"
lanes8_exact="$(lane_rate "${hotpath_log}" 8)"
lanes16_exact="$(lane_rate "${hotpath_log}" 16)"
rm -f "${hotpath_log}"
# Exact mode is where the fused cross-lane walk runs (adaptive lanes
# round-robin whole quanta), so the headline speedup is the exact one.
lane_speedup_exact="$(awk -v a="${lanes1_exact}" -v b="${lanes8_exact}" \
    'BEGIN{printf "%.2f", b / a}')"
echo "lane speedup (exact, lanes=8 vs lanes=1): ${lane_speedup_exact}"

echo "== ovh_memsample =="
memsample_log="$(mktemp)"
"${bench}/ovh_memsample" --benchmark_min_time=0.1s \
    | tee "${memsample_log}"
walk_ns="$(awk '/^MEMSAMPLE_WALK_NS_PER_SAMPLE /{print $2}' \
    "${memsample_log}")"
next_ns="$(awk '/^MEMSAMPLE_STREAM_NEXT_NS /{print $2}' \
    "${memsample_log}")"
rm -f "${memsample_log}"

time_bench() {
    local start end
    start="$(date +%s.%N)"
    "${bench}/$1" >/dev/null
    end="$(date +%s.%N)"
    awk -v a="${start}" -v b="${end}" 'BEGIN{printf "%.3f", b - a}'
}

# Fleet campaign throughput: the serial reference pass's devices/s is
# the tracked number; the bench also self-checks tier byte-identity,
# mid-campaign SIGKILL + checkpoint resume, cohort conservation, and
# its own peak-RSS ceiling (exits non-zero on any violation).
# Model-free governors + a short load wall keep the recording to
# minutes.
fleet_devices=120
echo "== fleet_rollout (${fleet_devices} devices) =="
fleet_log="$(mktemp)"
"${bench}/fleet_rollout" --fleet-devices "${fleet_devices}" \
    --fleet-governors interactive,ondemand --fleet-max-load 1.0 \
    | tee "${fleet_log}"
fleet_rate="$(awk '$1=="FLEET" && $2=="jobs=1" && $3=="workers=0" && \
    $4=="lanes=1" {sub("devices_per_sec=","",$6); print $6}' \
    "${fleet_log}")"
fleet_identical="$(awk '/^FLEET identical=/{sub("identical=","",$2); \
    print $2}' "${fleet_log}")"
fleet_resume="$(awk '/^FLEET identical=/{sub("resume_identical=","",$3); \
    print $3}' "${fleet_log}")"
fleet_rss_mb="$(awk '/^FLEET identical=/{sub("peak_rss_mb=","",$5); \
    print $5}' "${fleet_log}")"
[[ "${fleet_identical}" == "1" ]] && fleet_identical=true \
    || fleet_identical=false
[[ "${fleet_resume}" == "1" ]] && fleet_resume=true \
    || fleet_resume=false
rm -f "${fleet_log}"

echo "== fig01/fig03 wall-clock =="
fig01_sec="$(time_bench fig01_interference_loadtime)"
echo "fig01_interference_loadtime ${fig01_sec}s"
fig03_sec="$(time_bench fig03_fopt_tradeoff)"
echo "fig03_fopt_tradeoff ${fig03_sec}s"

cat > "${out}" <<EOF
{
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_hardware_threads": $(nproc),
  "jobs": ${jobs},
  "ext_parallel_scaling": {
    "wall_jobs1_sec": ${wall_serial},
    "wall_jobsN_sec": ${wall_parallel},
    "workers": ${workers_n},
    "wall_workersN_sec": ${wall_workers},
    "wall_lanes4_sec": ${wall_lanes},
    "speedup": ${speedup},
    "identical": ${identical}
  },
  "ovh_hotpath": {
    "ticks_per_sec": ${ticks},
    "ticks_per_sec_exact": ${ticks_exact},
    "lanes1_ticks_per_sec": ${lanes1},
    "lanes4_ticks_per_sec": ${lanes4},
    "lanes8_ticks_per_sec": ${lanes8},
    "lanes16_ticks_per_sec": ${lanes16},
    "lanes1_ticks_per_sec_exact": ${lanes1_exact},
    "lanes4_ticks_per_sec_exact": ${lanes4_exact},
    "lanes8_ticks_per_sec_exact": ${lanes8_exact},
    "lanes16_ticks_per_sec_exact": ${lanes16_exact},
    "lane_speedup_exact_n8": ${lane_speedup_exact}
  },
  "ovh_memsample": {
    "walk_ns_per_sample": ${walk_ns},
    "stream_next_ns": ${next_ns}
  },
  "fleet_rollout": {
    "devices": ${fleet_devices},
    "devices_per_sec": ${fleet_rate},
    "peak_rss_mb": ${fleet_rss_mb},
    "identical": ${fleet_identical},
    "resume_identical": ${fleet_resume}
  },
  "figures_serial": {
    "fig01_interference_loadtime_sec": ${fig01_sec},
    "fig03_fopt_tradeoff_sec": ${fig03_sec}
  }
}
EOF
echo "wrote ${out}"
