#!/usr/bin/env bash
# Build and run the test suite under a sanitizer build.
#
# Usage: scripts/run_sanitized_tests.sh [--sanitize=<set>] [extra ctest args...]
#
#   --sanitize=<set>   comma-separated set passed to -DDORA_SANITIZE
#                      (default: address,undefined). Notably
#                      --sanitize=thread runs TSan over the parallel
#                      execution engine.
#
# This script covers runtime checking only; static checking lives in
# scripts/ci.sh: the `lint` stage (dora-lint line rules, clang-tidy,
# the clang -Wthread-safety build; DORA_SKIP_LINT=1 to skip) and the
# `analyze` stage (dora-analyze cross-TU structural rules — hash/
# snapshot coverage, stream tags, serialized-layout versions;
# DORA_SKIP_ANALYZE=1 to skip). The fuzz smoke suite (fuzz_tests)
# runs here with full effect: ASan/UBSan turn a silently-tolerated
# out-of-bounds read in a deserializer into a hard failure.
#
# Every sanitizer set gets its own build tree (build-sanitize-<set>).
# If a tree already exists but was configured with a different
# DORA_SANITIZE value, the script fails loudly instead of silently
# running binaries built with the wrong instrumentation.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

sanitize="address,undefined"
ctest_args=()
for arg in "$@"; do
    case "${arg}" in
        --sanitize=*) sanitize="${arg#--sanitize=}" ;;
        *) ctest_args+=("${arg}") ;;
    esac
done

build_dir="${repo_root}/build-sanitize-${sanitize//,/-}"
cache="${build_dir}/CMakeCache.txt"
if [[ -d "${build_dir}" && ! -f "${cache}" ]]; then
    echo "error: ${build_dir} exists but has no CMakeCache.txt;" \
         "remove it and re-run" >&2
    exit 1
fi
if [[ -f "${cache}" ]]; then
    configured="$(sed -n 's/^DORA_SANITIZE:[A-Z]*=//p' "${cache}")"
    if [[ "${configured}" != "${sanitize}" ]]; then
        echo "error: stale build dir ${build_dir}:" \
             "configured with DORA_SANITIZE='${configured}'," \
             "requested '${sanitize}'. Remove the directory and" \
             "re-run." >&2
        exit 1
    fi
fi

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDORA_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes sanitizer findings fail the test run instead of
# scrolling past as warnings.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cd "${build_dir}"
if [[ "${sanitize}" == "thread" && ${#ctest_args[@]} -eq 0 ]]; then
    # Default TSan scope: the concurrency-bearing suites. ParallelMap
    # also matches ParallelMapCdf — the regression test for the old
    # lazily-sorting-under-const EmpiricalCdf race (stats/cdf.hh).
    # Pass explicit ctest args to widen it.
    ctest_args=(-R 'JobCount|ParallelFor|ParallelMap|ThreadPool|ParallelDeterminism|ProcSupervisorTest|KillResume')
fi
ctest --output-on-failure "${ctest_args[@]}"
