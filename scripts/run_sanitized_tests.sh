#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer +
# UndefinedBehaviorSanitizer in a dedicated build tree.
#
# Usage: scripts/run_sanitized_tests.sh [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build-sanitize"

cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDORA_SANITIZE=address,undefined
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test run instead of
# scrolling past as warnings.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}"

cd "${build_dir}"
ctest --output-on-failure "$@"
