/**
 * @file
 * Thermal study: how ambient temperature, die heating, and leakage
 * interact with the frequency decision.
 *
 * Runs the same workload across an ambient sweep and prints die
 * temperature, the leakage share of device power, and where the
 * PPW-optimal frequency lands — the physics behind Figure 10.
 */

#include <iostream>

#include "browser/page_corpus.hh"
#include "common/table.hh"
#include "power/leakage.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main()
{
    const WorkloadSpec workload = WorkloadSets::combo(
        PageCorpus::byName("amazon"), MemIntensity::Medium);

    // --- Leakage physics: the Liao surface itself. ---
    printBanner(std::cout, "Leakage power (W) vs voltage/temperature "
                           "(ground-truth Liao model)");
    const LeakageModel leak = LeakageModel::msm8974Truth();
    TextTable surface({"degC \\ V", "0.80", "0.90", "1.00", "1.10"});
    for (double t : {25.0, 40.0, 55.0, 70.0, 85.0}) {
        surface.beginRow();
        surface.add(t, 0);
        for (double v : {0.80, 0.90, 1.00, 1.10})
            surface.add(leak.power(v, t), 3);
    }
    surface.print(std::cout);

    // --- Ambient sweep on a live workload. ---
    printBanner(std::cout, "Amazon + medium across ambient "
                           "temperatures (pinned at 1.96 GHz)");
    TextTable sweep({"ambient degC", "peak die degC", "mean power W",
                     "PPW 1/J"});
    for (double ambient : {0.0, 10.0, 25.0, 35.0, 45.0}) {
        ExperimentConfig config;
        config.ambientC = ambient;
        ExperimentRunner runner(config);
        const RunMeasurement m = runner.runAtFrequency(
            workload, runner.freqTable().nearestIndex(1958.4));
        sweep.beginRow();
        sweep.add(ambient, 0);
        sweep.add(m.peakTempC, 1);
        sweep.add(m.meanPowerW, 3);
        sweep.add(m.ppw, 4);
    }
    sweep.print(std::cout);

    // --- Where does the measured fopt land per ambient? ---
    printBanner(std::cout, "Measured fopt (best PPW meeting 3 s) vs "
                           "ambient");
    TextTable fopt_table({"ambient degC", "fopt GHz", "fopt PPW 1/J"});
    for (double ambient : {10.0, 25.0, 40.0}) {
        ExperimentConfig config;
        config.ambientC = ambient;
        ExperimentRunner runner(config);
        const FreqTable &table = runner.freqTable();
        double best = 0.0;
        size_t best_idx = table.maxIndex();
        for (size_t f : table.paperSweepIndices()) {
            const RunMeasurement m = runner.runAtFrequency(workload, f);
            if (m.meetsDeadline && m.ppw > best) {
                best = m.ppw;
                best_idx = f;
            }
        }
        fopt_table.beginRow();
        fopt_table.add(ambient, 0);
        fopt_table.add(table.opp(best_idx).coreMhz / 1000.0, 2);
        fopt_table.add(best, 4);
    }
    fopt_table.print(std::cout);
    std::cout << "\nHotter ambients inflate leakage at high frequency, "
                 "dragging fopt toward lower operating points — the "
                 "effect DORA's leakage term captures (Fig. 10).\n";
    return 0;
}
