/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * 1. Pick a web page and a co-scheduled kernel.
 * 2. Sweep the pinned core frequency and watch load time, device power,
 *    and energy efficiency (PPW) — reproducing the paper's core
 *    observation that an interior frequency maximizes PPW, and that the
 *    deadline-meeting frequency moves with interference.
 * 3. Print the co-run kernel catalog with measured solo L2 MPKI.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "browser/page_corpus.hh"
#include "common/table.hh"
#include "runner/experiment.hh"
#include "workloads/kernel.hh"

using namespace dora;

int
main()
{
    ExperimentRunner runner;
    const FreqTable &table = runner.freqTable();

    // --- Frequency sweep: Amazon + medium-intensity interference. ---
    const WebPage &page = PageCorpus::byName("amazon");
    const WorkloadSpec workload =
        WorkloadSets::combo(page, MemIntensity::Medium);

    printBanner(std::cout, "Sweep: " + workload.label() +
                " (deadline 3 s)");
    TextTable sweep({"core GHz", "bus MHz", "load time s", "power W",
                     "PPW 1/J", "meets 3s"});
    for (size_t f : table.paperSweepIndices()) {
        const RunMeasurement m = runner.runAtFrequency(workload, f);
        sweep.beginRow();
        sweep.add(table.opp(f).coreMhz / 1000.0, 2);
        sweep.add(table.opp(f).busMhz, 0);
        sweep.add(m.loadTimeSec, 3);
        sweep.add(m.meanPowerW, 3);
        sweep.add(m.ppw, 4);
        sweep.add(std::string(m.meetsDeadline ? "yes" : "no"));
    }
    sweep.print(std::cout);

    // --- Kernel catalog with measured solo MPKI. ---
    printBanner(std::cout, "Co-run kernel catalog (solo @ 2.27 GHz)");
    TextTable kernels({"kernel", "domain", "expected", "measured MPKI",
                       "class ok"});
    for (const auto &spec : KernelCatalog::all()) {
        const RunMeasurement m = runner.runAtFrequency(
            WorkloadSets::kernelOnly(spec), table.maxIndex());
        kernels.beginRow();
        kernels.add(spec.name);
        kernels.add(spec.domain);
        kernels.add(std::string(memIntensityName(spec.expectedClass)));
        kernels.add(m.meanL2Mpki, 2);
        kernels.add(std::string(
            classifyMpki(m.meanL2Mpki) == spec.expectedClass ? "yes"
                                                             : "no"));
    }
    kernels.print(std::cout);
    return 0;
}
