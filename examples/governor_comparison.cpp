/**
 * @file
 * Compare every governor on one workload of your choice.
 *
 * Usage: governor_comparison [page] [low|medium|high|none] [deadline_s]
 * Defaults: reddit, high, 3.0.
 *
 * Demonstrates the comparison harness: the same workload is run under
 * interactive, performance, powersave, DL, EE, DORA, and the
 * offline-optimal pinned frequency, and the paper's headline metrics
 * (load time, mean power, PPW, deadline verdict) are printed for each.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/bundle_cache.hh"
#include "harness/comparison.hh"
#include "power/battery.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    const std::string page_name = argc > 1 ? argv[1] : "reddit";
    const std::string intensity = argc > 2 ? argv[2] : "high";
    const double deadline = argc > 3 ? std::atof(argv[3]) : 3.0;

    const WebPage &page = PageCorpus::byName(page_name);
    WorkloadSpec workload;
    if (intensity == "none") {
        workload = WorkloadSets::alone(page);
    } else {
        MemIntensity cls;
        if (intensity == "low")
            cls = MemIntensity::Low;
        else if (intensity == "medium")
            cls = MemIntensity::Medium;
        else if (intensity == "high")
            cls = MemIntensity::High;
        else
            fatal("unknown intensity '%s' (low|medium|high|none)",
                  intensity.c_str());
        workload = WorkloadSets::combo(page, cls);
    }

    std::cerr << "Loading DORA models (first run trains; later runs "
                 "reuse " << defaultBundleCachePath() << ")\n";
    auto bundle = loadOrTrainBundle();

    ExperimentConfig config;
    config.deadlineSec = deadline;
    ComparisonHarness harness(config, bundle);

    printBanner(std::cout, "Workload " + workload.label() +
                " (deadline " + formatFixed(deadline, 1) + " s)");
    TextTable t({"governor", "mean GHz", "load time s", "power W",
                 "PPW 1/J", "PPW vs interactive", "meets deadline",
                 "switches"});
    const RunMeasurement base = harness.runOne(workload, "interactive");
    auto add_row = [&](const RunMeasurement &m) {
        t.beginRow();
        t.add(m.governor);
        t.add(m.meanFreqMhz / 1000.0, 2);
        t.add(m.loadTimeSec, 3);
        t.add(m.meanPowerW, 3);
        t.add(m.ppw, 4);
        t.add(m.ppw / base.ppw, 3);
        t.add(std::string(m.meetsDeadline ? "yes" : "no"));
        t.add(static_cast<int64_t>(m.freqSwitches));
    };
    add_row(base);
    for (const char *gov :
         {"performance", "powersave", "ondemand", "DL", "EE", "DORA"})
        add_row(harness.runOne(workload, gov));
    add_row(harness.offlineOpt(workload));
    t.print(std::cout);

    const RunMeasurement dora = harness.runOne(workload, "DORA");
    std::cout << "\nBattery-life view (continuous browsing of this "
                 "workload):\n  interactive: "
              << formatFixed(batteryLifeHours(base.meanPowerW), 2)
              << " h   DORA: "
              << formatFixed(batteryLifeHours(dora.meanPowerW), 2)
              << " h   (x"
              << formatFixed(
                     batteryLifeFactorFromPpw(dora.ppw, base.ppw), 3)
              << " page loads per charge)\n";
    return 0;
}
