/**
 * @file
 * Trace explorer: run any workload under any governor and dump what
 * the governor saw and did — the decision trace (time, MPKI, co-runner
 * utilization, chosen OPP), the per-OPP residency histogram, and the
 * mean device power breakdown.
 *
 * Usage: trace_explorer [page] [low|medium|high|none] [governor]
 * Governors: interactive, performance, powersave, ondemand, DL, EE,
 *            DORA, DORA_no_lkg.
 * Defaults: espn medium DORA.
 */

#include <iostream>
#include <string>

#include "browser/page_corpus.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "harness/bundle_cache.hh"
#include "harness/comparison.hh"

using namespace dora;

int
main(int argc, char **argv)
{
    const std::string page_name = argc > 1 ? argv[1] : "espn";
    const std::string intensity = argc > 2 ? argv[2] : "medium";
    const std::string governor = argc > 3 ? argv[3] : "DORA";

    const WebPage &page = PageCorpus::byName(page_name);
    WorkloadSpec workload;
    if (intensity == "none") {
        workload = WorkloadSets::alone(page);
    } else if (intensity == "low") {
        workload = WorkloadSets::combo(page, MemIntensity::Low);
    } else if (intensity == "medium") {
        workload = WorkloadSets::combo(page, MemIntensity::Medium);
    } else if (intensity == "high") {
        workload = WorkloadSets::combo(page, MemIntensity::High);
    } else {
        fatal("unknown intensity '%s'", intensity.c_str());
    }

    auto bundle = loadOrTrainBundle();
    ComparisonHarness harness(ExperimentConfig{}, bundle);
    const RunMeasurement m = harness.runOne(workload, governor);
    const FreqTable table = FreqTable::msm8974();

    printBanner(std::cout, workload.label() + " under " + governor);
    std::cout << "load time " << formatFixed(m.loadTimeSec, 3)
              << " s (deadline "
              << (m.meetsDeadline ? "met" : "missed") << "), power "
              << formatFixed(m.meanPowerW, 3) << " W, PPW "
              << formatFixed(m.ppw, 4) << ", "
              << m.freqSwitches << " switches\n";

    printBanner(std::cout, "Decision trace");
    TextTable trace({"t s", "L2 MPKI", "corun util", "die degC",
                     "chosen GHz"});
    const double t0 = m.decisions.empty() ? 0.0 : m.decisions[0].tSec;
    for (const auto &d : m.decisions) {
        trace.beginRow();
        trace.add(d.tSec - t0, 2);
        trace.add(d.l2Mpki, 2);
        trace.add(d.corunUtil, 2);
        trace.add(d.temperatureC, 1);
        trace.add(table.opp(d.freqIndex).coreMhz / 1000.0, 2);
    }
    trace.print(std::cout);

    printBanner(std::cout, "Frequency residency");
    TextTable res({"core GHz", "seconds", "share %"});
    for (size_t f = 0; f < m.freqResidencySec.size(); ++f) {
        if (m.freqResidencySec[f] <= 0.0)
            continue;
        res.beginRow();
        res.add(table.opp(f).coreMhz / 1000.0, 2);
        res.add(m.freqResidencySec[f], 3);
        res.add(100.0 * m.freqResidencySec[f] / m.loadTimeSec, 1);
    }
    res.print(std::cout);

    printBanner(std::cout, "Mean power breakdown (W)");
    TextTable brk({"baseline", "core dyn", "L2 traffic", "DRAM",
                   "leakage", "switch", "total"});
    brk.beginRow();
    brk.add(m.meanBreakdown.baseline, 3);
    brk.add(m.meanBreakdown.coreDynamic, 3);
    brk.add(m.meanBreakdown.l2Traffic, 3);
    brk.add(m.meanBreakdown.dram, 3);
    brk.add(m.meanBreakdown.leakage, 3);
    brk.add(m.meanBreakdown.dvfsSwitch, 3);
    brk.add(m.meanBreakdown.total(), 3);
    brk.print(std::cout);
    return 0;
}
