/**
 * @file
 * Bring your own web page: define a page outside the built-in corpus,
 * let DORA (trained only on the 14 training pages) govern its load,
 * and inspect Algorithm 1's per-OPP evaluation table.
 *
 * This is the generalization story of the paper in miniature — the
 * models take page *features*, so an unseen page needs no retraining.
 */

#include <iostream>

#include "browser/page_load.hh"
#include "common/table.hh"
#include "dora/predictive_governor.hh"
#include "harness/bundle_cache.hh"
#include "runner/experiment.hh"

using namespace dora;

int
main()
{
    // A medium-heavy news page that is not in the corpus.
    WebPage page;
    page.name = "my-news-site";
    page.features.domNodes = 1650;
    page.features.classAttrs = 1200;
    page.features.hrefAttrs = 520;
    page.features.aTags = 580;
    page.features.divTags = 820;
    page.contentBytes = 0.95 * 800.0 *
        (page.features.domNodes + 2.5 * page.features.divTags);
    page.scriptWeight = 1.1;

    auto bundle = loadOrTrainBundle();

    // Peek inside Algorithm 1: what does DORA predict for each OPP
    // right now, with a high-intensity co-runner raising MPKI?
    const FreqTable table = FreqTable::msm8974();
    PredictiveGovernor dora = makeDora(bundle);
    GovernorView view;
    view.freqIndex = table.maxIndex();
    view.freqTable = &table;
    view.l2Mpki = 9.0;
    view.corunUtilization = 0.95;
    view.temperatureC = 45.0;
    view.page = &page.features;
    view.deadlineSec = 3.0;
    const size_t fopt = dora.decideFrequencyIndex(view);

    printBanner(std::cout,
                "Algorithm 1 evaluation for " + page.name);
    TextTable t({"core GHz", "pred load s", "pred power W", "pred PPW",
                 "meets 3s", ""});
    for (const auto &e : dora.lastEvaluation()) {
        t.beginRow();
        t.add(table.opp(e.freqIndex).coreMhz / 1000.0, 2);
        t.add(e.predLoadTimeSec, 3);
        t.add(e.predPowerW, 3);
        t.add(e.predPpw, 4);
        t.add(std::string(e.meetsDeadline ? "yes" : "no"));
        t.add(std::string(e.freqIndex == fopt ? "<- fopt" : ""));
    }
    t.print(std::cout);

    // Now actually run the load under DORA and check the prediction.
    ExperimentRunner runner;
    WorkloadSpec workload;
    workload.page = &page;
    workload.kernel = &KernelCatalog::representative(MemIntensity::High);
    PredictiveGovernor governor = makeDora(bundle);
    const RunMeasurement m = runner.run(workload, governor);

    printBanner(std::cout, "Live run under DORA");
    std::cout << "load time  : " << formatFixed(m.loadTimeSec, 3)
              << " s (deadline 3 s -> "
              << (m.meetsDeadline ? "met" : "missed") << ")\n"
              << "mean power : " << formatFixed(m.meanPowerW, 3)
              << " W\n"
              << "PPW        : " << formatFixed(m.ppw, 4) << " 1/J\n"
              << "mean freq  : " << formatFixed(m.meanFreqMhz / 1000.0,
                                                2)
              << " GHz\n";
    return 0;
}
